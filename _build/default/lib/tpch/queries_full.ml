(** A selection of the *original* TPC-H benchmark queries, adapted to the
    MiniDB dialect.

    §IX-A explains why the paper's evaluation replaces the TPC-H suite
    with the custom Q1–Q4 of Table II (the originals touch large table
    fractions and return few rows, which would bias the packaging
    comparison). The originals remain the standard credibility check for
    the SQL substrate, so they live here: multi-column GROUP BY, CASE
    inside aggregates, six-way joins, correlated date ranges and LIMIT.

    Dates are ISO-formatted strings, so TPC-H's date arithmetic becomes
    lexicographic comparison against precomputed bounds. Each query lists
    the capabilities it exercises. *)

type t = {
  qf_id : string;  (** TPC-H query number, e.g. "TPCH-Q1" *)
  qf_name : string;
  qf_sql : string;
  qf_exercises : string list;
}

(* Q1: pricing summary report. Multi-column GROUP BY, aggregate over an
   arithmetic expression, multi-key ORDER BY. *)
let q1 =
  { qf_id = "TPCH-Q1";
    qf_name = "pricing summary report";
    qf_sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
       sum(l_extendedprice) AS sum_base_price, sum(l_extendedprice * (1 - \
       l_discount)) AS sum_disc_price, avg(l_quantity) AS avg_qty, \
       avg(l_extendedprice) AS avg_price, avg(l_discount) AS avg_disc, \
       count(*) AS count_order FROM lineitem WHERE l_shipdate <= \
       '1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY \
       l_returnflag, l_linestatus";
    qf_exercises =
      [ "multi-column GROUP BY"; "aggregate over expression"; "multi-key sort" ] }

(* Q3: shipping priority. 3-way join, aggregate alias in ORDER BY, LIMIT. *)
let q3 =
  { qf_id = "TPCH-Q3";
    qf_name = "shipping priority";
    qf_sql =
      "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS \
       revenue, o_orderdate, o_shippriority FROM customer c, orders o, \
       lineitem l WHERE c_mktsegment = 'BUILDING' AND c.c_custkey = \
       o.o_custkey AND l.l_orderkey = o.o_orderkey AND o_orderdate < \
       '1995-03-15' AND l_shipdate > '1995-03-15' GROUP BY l_orderkey, \
       o_orderdate, o_shippriority ORDER BY revenue DESC, o_orderdate \
       LIMIT 10";
    qf_exercises = [ "3-way join"; "ORDER BY output alias"; "LIMIT" ] }

(* Q5: local supplier volume. Six-way join through region/nation. *)
let q5 =
  { qf_id = "TPCH-Q5";
    qf_name = "local supplier volume";
    qf_sql =
      "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue \
       FROM customer c, orders o, lineitem l, supplier s, nation n, region \
       r WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
       AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey AND \
       s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey AND \
       r_name = 'ASIA' AND o_orderdate >= '1994-01-01' AND o_orderdate < \
       '1995-01-01' GROUP BY n_name ORDER BY revenue DESC";
    qf_exercises = [ "6-way join"; "date range"; "aggregate sort" ] }

(* Q6: forecasting revenue change. Pure selection + single aggregate. *)
let q6 =
  { qf_id = "TPCH-Q6";
    qf_name = "forecasting revenue change";
    qf_sql =
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem \
       WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' AND \
       l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";
    qf_exercises = [ "range predicates"; "single-row aggregate" ] }

(* Q10: returned item reporting. 4-way join, wide GROUP BY, LIMIT 20. *)
let q10 =
  { qf_id = "TPCH-Q10";
    qf_name = "returned item reporting";
    qf_sql =
      "SELECT c.c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) \
       AS revenue, c_acctbal, n_name, c_address, c_phone FROM customer c, \
       orders o, lineitem l, nation n WHERE c.c_custkey = o.o_custkey AND \
       l.l_orderkey = o.o_orderkey AND o_orderdate >= '1993-10-01' AND \
       o_orderdate < '1994-01-01' AND l_returnflag = 'R' AND c.c_nationkey \
       = n.n_nationkey GROUP BY c.c_custkey, c_name, c_acctbal, c_phone, \
       n_name, c_address ORDER BY revenue DESC LIMIT 20";
    qf_exercises = [ "4-way join"; "six-column GROUP BY"; "LIMIT" ] }

(* Q12: shipping modes and order priority. IN list + CASE inside SUM. *)
let q12 =
  { qf_id = "TPCH-Q12";
    qf_name = "shipping modes and order priority";
    qf_sql =
      "SELECT l_shipmode, sum(CASE WHEN o_orderpriority = '1-URGENT' OR \
       o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> \
       '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM orders o, \
       lineitem l WHERE o.o_orderkey = l.l_orderkey AND l_shipmode IN \
       ('MAIL', 'SHIP') AND l_receiptdate >= '1994-01-01' AND \
       l_receiptdate < '1995-01-01' GROUP BY l_shipmode ORDER BY \
       l_shipmode";
    qf_exercises = [ "CASE inside aggregates"; "IN list" ] }

(* Q14: promotion effect. Arithmetic over two aggregate slots. *)
let q14 =
  { qf_id = "TPCH-Q14";
    qf_name = "promotion effect";
    qf_sql =
      "SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%' THEN \
       l_extendedprice * (1 - l_discount) ELSE 0.0 END) / \
       sum(l_extendedprice * (1 - l_discount)) AS promo_revenue FROM \
       lineitem l, part p WHERE l.l_partkey = p.p_partkey AND l_shipdate \
       >= '1995-09-01' AND l_shipdate < '1995-10-01'";
    qf_exercises = [ "expression over aggregate slots"; "LIKE in CASE" ] }

let all = [ q1; q3; q5; q6; q10; q12; q14 ]

let find id =
  match List.find_opt (fun q -> String.equal q.qf_id id) all with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Queries_full.find: unknown %s" id)

(** Run every query against [db]; returns (id, row count) pairs. Raises on
    the first failure — used as a dialect smoke test. *)
let run_all (db : Minidb.Database.t) : (string * int) list =
  List.map
    (fun q ->
      let r = Minidb.Database.query db q.qf_sql in
      (q.qf_id, List.length r.Minidb.Executor.rows))
    all
