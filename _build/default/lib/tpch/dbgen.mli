(** Deterministic TPC-H data generation (the dbgen substitute). Row counts
    scale linearly with [sf] relative to the TPC-H SF=1 sizes the paper
    used. *)

open Minidb

type stats = {
  sf : float;
  n_region : int;
  n_nation : int;
  n_supplier : int;
  n_part : int;
  n_partsupp : int;
  n_customer : int;
  n_orders : int;
  n_lineitem : int;
}

(** One fresh order row (also used by the workload's Insert step). *)
val order_row : Prng.t -> orderkey:int -> n_customer:int -> Value.t array

(** Populate a database whose TPC-H tables already exist; returns the
    realized row counts. *)
val populate : ?seed:int -> Database.t -> sf:float -> stats

(** Create tables (with PK indexes) and populate a fresh database. *)
val setup : ?seed:int -> sf:float -> unit -> Database.t * stats

val pp_stats : Format.formatter -> stats -> unit
