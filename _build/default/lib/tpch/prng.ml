(** SplitMix64: the deterministic PRNG behind data generation.

    All randomness in the repository flows through explicitly-seeded
    instances of this generator, which keeps every experiment (and every
    replayed execution) bit-for-bit reproducible. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Uniform integer in [lo, hi] inclusive. *)
let in_range t ~lo ~hi = lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = int t 2 = 0

let choose t arr = arr.(int t (Array.length arr))

(** A random lowercase word of length in [lo, hi]. *)
let word t ~lo ~hi =
  let len = in_range t ~lo ~hi in
  String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))

(** A comment-like phrase of roughly [target] characters. *)
let phrase t ~target =
  let buf = Buffer.create target in
  while Buffer.length buf < target do
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (word t ~lo:3 ~hi:9)
  done;
  Buffer.contents buf

(** A date string between 1992-01-01 and 1998-12-31 (uniform per field,
    which is all the workload needs). *)
let date t =
  Printf.sprintf "%04d-%02d-%02d" (in_range t ~lo:1992 ~hi:1998)
    (in_range t ~lo:1 ~hi:12) (in_range t ~lo:1 ~hi:28)
