(** SplitMix64: the deterministic PRNG behind all data generation. Every
    experiment and replayed execution is bit-for-bit reproducible because
    all randomness flows through explicitly seeded instances. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64

(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val in_range : t -> lo:int -> hi:int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool
val choose : t -> 'a array -> 'a

(** A random lowercase word of length in [lo, hi]. *)
val word : t -> lo:int -> hi:int -> string

(** A comment-like phrase of roughly [target] characters. *)
val phrase : t -> target:int -> string

(** A date string between 1992-01-01 and 1998-12-31. *)
val date : t -> string
