(** The TPC-H schema (all eight tables) as MiniDB DDL. *)

open Minidb

let ddl =
  [ "CREATE TABLE region (r_regionkey INT, r_name TEXT, r_comment TEXT)";
    "CREATE TABLE nation (n_nationkey INT, n_name TEXT, n_regionkey INT, \
     n_comment TEXT)";
    "CREATE TABLE supplier (s_suppkey INT, s_name TEXT, s_address TEXT, \
     s_nationkey INT, s_phone TEXT, s_acctbal FLOAT, s_comment TEXT)";
    "CREATE TABLE part (p_partkey INT, p_name TEXT, p_mfgr TEXT, p_brand \
     TEXT, p_type TEXT, p_size INT, p_retailprice FLOAT, p_comment TEXT)";
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, \
     ps_supplycost FLOAT, ps_comment TEXT)";
    "CREATE TABLE customer (c_custkey INT, c_name TEXT, c_address TEXT, \
     c_nationkey INT, c_phone TEXT, c_acctbal FLOAT, c_mktsegment TEXT, \
     c_comment TEXT)";
    "CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_orderstatus TEXT, \
     o_totalprice FLOAT, o_orderdate TEXT, o_orderpriority TEXT, o_clerk \
     TEXT, o_shippriority INT, o_comment TEXT)";
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, \
     l_linenumber INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount \
     FLOAT, l_tax FLOAT, l_returnflag TEXT, l_linestatus TEXT, l_shipdate \
     TEXT, l_commitdate TEXT, l_receiptdate TEXT, l_shipinstruct TEXT, \
     l_shipmode TEXT, l_comment TEXT)" ]

let table_names =
  [ "region"; "nation"; "supplier"; "part"; "partsupp"; "customer"; "orders";
    "lineitem" ]

(** Primary-key-style indexes, as any real TPC-H deployment would have.
    The o_orderkey index in particular makes the workload's point updates
    realistic. *)
let index_ddl =
  [ "CREATE INDEX orders_pk ON orders (o_orderkey)";
    "CREATE INDEX customer_pk ON customer (c_custkey)";
    "CREATE INDEX supplier_pk ON supplier (s_suppkey)";
    "CREATE INDEX part_pk ON part (p_partkey)";
    "CREATE INDEX lineitem_okey ON lineitem (l_orderkey)" ]

(** Create all TPC-H tables and their indexes in [db]. *)
let create_tables (db : Database.t) =
  List.iter (fun sql -> ignore (Database.exec db sql)) ddl;
  List.iter (fun sql -> ignore (Database.exec db sql)) index_ddl

(** TPC-H formats entity names with 9-digit zero padding; the LIKE-based
    selectivity of queries Q2/Q3 relies on this. *)
let customer_name i = Printf.sprintf "Customer#%09d" i

let supplier_name i = Printf.sprintf "Supplier#%09d" i
let part_name i = Printf.sprintf "Part#%09d" i
let clerk_name i = Printf.sprintf "Clerk#%09d" i
