(** Deterministic TPC-H data generation (the dbgen substitute).

    Row counts scale linearly with the scale factor [sf] relative to the
    TPC-H SF=1 sizes the paper used (supplier 10k, customer 150k, orders
    1.5M, lineitem ~6M). Experiments run at micro scale factors; the
    selectivity-driven shape of the paper's results is preserved because
    query parameters are derived from these counts (see {!Queries}). *)

open Minidb

type stats = {
  sf : float;
  n_region : int;
  n_nation : int;
  n_supplier : int;
  n_part : int;
  n_partsupp : int;
  n_customer : int;
  n_orders : int;
  n_lineitem : int;
}

let scaled sf base = max 1 (int_of_float (Float.round (float_of_int base *. sf)))

let plan_counts ~sf =
  let n_part = scaled sf 200_000 in
  { sf;
    n_region = 5;
    n_nation = 25;
    n_supplier = scaled sf 10_000;
    n_part;
    n_partsupp = n_part * 4;
    n_customer = scaled sf 150_000;
    n_orders = scaled sf 1_500_000;
    n_lineitem = 0 (* filled in after generation; ~4x orders *) }

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes = [| "AIR"; "FOB"; "MAIL"; "RAIL"; "SHIP"; "TRUCK" |]

(* TPC-H part types: syllable1 x syllable2 x syllable3; PROMO parts drive
   query Q14's promo-revenue ratio *)
let part_types =
  [| "PROMO BRUSHED TIN"; "PROMO POLISHED COPPER"; "PROMO ANODIZED STEEL";
     "STANDARD BRUSHED NICKEL"; "STANDARD PLATED BRASS";
     "MEDIUM POLISHED TIN"; "MEDIUM ANODIZED COPPER";
     "ECONOMY BURNISHED STEEL"; "ECONOMY PLATED NICKEL";
     "LARGE BRUSHED BRASS"; "SMALL POLISHED STEEL"; "SMALL PLATED COPPER" |]
let ship_instr = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]

let i v = Value.Int v
let f v = Value.Float v
let s v = Value.Str v

(** Generate one fresh order row (also used by the workload's Insert
    step). *)
let order_row rng ~orderkey ~n_customer : Value.t array =
  [| i orderkey;
     i (Prng.in_range rng ~lo:1 ~hi:n_customer);
     s (Prng.choose rng [| "O"; "F"; "P" |]);
     f (Float.round (Prng.float rng *. 400_000.0) /. 100.0 *. 100.0);
     s (Prng.date rng);
     s (Prng.choose rng priorities);
     s (Tpch_schema.clerk_name (Prng.in_range rng ~lo:1 ~hi:1000));
     i 0;
     s (Prng.phrase rng ~target:30) |]

let lineitem_row rng ~orderkey ~linenumber ~(c : stats) : Value.t array =
  [| i orderkey;
     i (Prng.in_range rng ~lo:1 ~hi:c.n_part);
     i (Prng.in_range rng ~lo:1 ~hi:c.n_supplier);
     i linenumber;
     f (float_of_int (Prng.in_range rng ~lo:1 ~hi:50));
     f (Float.round (Prng.float rng *. 95_000.0 +. 900.0));
     f (float_of_int (Prng.in_range rng ~lo:0 ~hi:10) /. 100.0);
     f (float_of_int (Prng.in_range rng ~lo:0 ~hi:8) /. 100.0);
     s (Prng.choose rng [| "A"; "N"; "R" |]);
     s (Prng.choose rng [| "O"; "F" |]);
     s (Prng.date rng);
     s (Prng.date rng);
     s (Prng.date rng);
     s (Prng.choose rng ship_instr);
     s (Prng.choose rng ship_modes);
     s (Prng.phrase rng ~target:25) |]

(** Populate a database (whose TPC-H tables must already exist) with
    deterministic data at scale factor [sf]; returns the realized row
    counts. *)
let populate ?(seed = 42) (db : Database.t) ~sf : stats =
  let c = plan_counts ~sf in
  let rng = Prng.create ~seed in
  let bulk table rows = ignore (Database.bulk_insert db ~table rows) in
  bulk "region"
    (List.init c.n_region (fun k ->
         [| i k; s region_names.(k); s (Prng.phrase rng ~target:30) |]));
  bulk "nation"
    (List.init c.n_nation (fun k ->
         [| i k;
            s (Printf.sprintf "NATION%02d" k);
            i (k mod c.n_region);
            s (Prng.phrase rng ~target:30) |]));
  bulk "supplier"
    (List.init c.n_supplier (fun k ->
         let key = k + 1 in
         [| i key;
            s (Tpch_schema.supplier_name key);
            s (Prng.phrase rng ~target:20);
            i (Prng.int rng c.n_nation);
            s (Printf.sprintf "%02d-%03d-%03d-%04d" (Prng.int rng 35 + 10)
                 (Prng.int rng 1000) (Prng.int rng 1000) (Prng.int rng 10000));
            f (Float.round (Prng.float rng *. 11_000.0 -. 1_000.0));
            s (Prng.phrase rng ~target:40) |]));
  bulk "part"
    (List.init c.n_part (fun k ->
         let key = k + 1 in
         [| i key;
            s (Tpch_schema.part_name key);
            s (Printf.sprintf "Manufacturer#%d" (Prng.in_range rng ~lo:1 ~hi:5));
            s (Printf.sprintf "Brand#%d%d" (Prng.in_range rng ~lo:1 ~hi:5)
                 (Prng.in_range rng ~lo:1 ~hi:5));
            s (Prng.choose rng part_types);
            i (Prng.in_range rng ~lo:1 ~hi:50);
            f (900.0 +. float_of_int key /. 10.0);
            s (Prng.phrase rng ~target:15) |]));
  bulk "partsupp"
    (List.concat
       (List.init c.n_part (fun k ->
            let partkey = k + 1 in
            List.init 4 (fun j ->
                [| i partkey;
                   i (((partkey + (j * (c.n_supplier / 4 + 1))) mod c.n_supplier) + 1);
                   i (Prng.in_range rng ~lo:1 ~hi:9999);
                   f (Float.round (Prng.float rng *. 1000.0));
                   s (Prng.phrase rng ~target:40) |]))));
  bulk "customer"
    (List.init c.n_customer (fun k ->
         let key = k + 1 in
         [| i key;
            s (Tpch_schema.customer_name key);
            s (Prng.phrase rng ~target:20);
            i (Prng.int rng c.n_nation);
            s (Printf.sprintf "%02d-%03d-%03d-%04d" (Prng.int rng 35 + 10)
                 (Prng.int rng 1000) (Prng.int rng 1000) (Prng.int rng 10000));
            f (Float.round (Prng.float rng *. 11_000.0 -. 1_000.0));
            s (Prng.choose rng segments);
            s (Prng.phrase rng ~target:50) |]));
  bulk "orders"
    (List.init c.n_orders (fun k ->
         order_row rng ~orderkey:(k + 1) ~n_customer:c.n_customer));
  (* lineitems: 1-7 per order, ~4x orders in expectation *)
  let n_lineitem = ref 0 in
  let lineitems =
    List.concat
      (List.init c.n_orders (fun k ->
           let orderkey = k + 1 in
           let lines = Prng.in_range rng ~lo:1 ~hi:7 in
           n_lineitem := !n_lineitem + lines;
           List.init lines (fun ln ->
               lineitem_row rng ~orderkey ~linenumber:(ln + 1) ~c)))
  in
  bulk "lineitem" lineitems;
  { c with n_lineitem = !n_lineitem }

(** Create tables and populate in one call on a fresh database. *)
let setup ?seed ~sf () : Database.t * stats =
  let db = Database.create ~name:"tpch" () in
  Tpch_schema.create_tables db;
  let stats = populate ?seed db ~sf in
  (db, stats)

let pp_stats ppf (c : stats) =
  Format.fprintf ppf
    "sf=%g region=%d nation=%d supplier=%d part=%d partsupp=%d customer=%d \
     orders=%d lineitem=%d"
    c.sf c.n_region c.n_nation c.n_supplier c.n_part c.n_partsupp c.n_customer
    c.n_orders c.n_lineitem
