(** The 18 workload queries of Table II.

    Four query families spanning a wide range of output-size to
    provenance-size ratios:

    - Q1: simple selection on lineitem, selectivities 1%-25%;
    - Q2: 3-way join returning comments, selectivities 66%-0.06%;
    - Q3: the same join under a count aggregate — one result row, large
      lineage;
    - Q4: join + aggregation (AVG per order), selectivities 1%-25%.

    The paper fixes PARAM values for a SF=1 instance; we derive the
    parameter from the *target selectivity* and the generated instance's
    actual row counts, so the selectivity shape survives micro scaling. *)

type variant = {
  vid : string;  (** e.g. "Q1-3" *)
  family : int;  (** 1..4 *)
  nominal_param : string;  (** the paper's PARAM column *)
  target_selectivity : float;
  param : string;  (** realized parameter for the generated instance *)
  sql : string;
}

(* Q1/Q4 parameter: the BETWEEN upper bound on l_suppkey hitting the target
   fraction of uniformly distributed supplier keys. *)
let suppkey_param (c : Dbgen.stats) sel =
  max 1 (int_of_float (Float.round (sel *. float_of_int c.Dbgen.n_supplier)))

(* Q2/Q3 parameter: a LIKE pattern of leading zeros matching roughly
   [sel * n_customer] of the 9-digit zero-padded customer names. A pattern
   of z zeros matches ids below 10^(9-z); for single-customer targets the
   pattern "000000001" pins exactly customer 1. *)
let like_param (c : Dbgen.stats) sel =
  let m =
    max 1
      (int_of_float
         (Float.round (sel *. float_of_int c.Dbgen.n_customer)))
  in
  if m < 5 then String.make 8 '0' ^ "1"
  else
    let z = 9 - int_of_float (Float.round (Float.log10 (float_of_int m))) in
    String.make (max 1 (min 8 z)) '0'

let q1_sql param =
  Printf.sprintf
    "SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, \
     l_receiptdate FROM lineitem WHERE l_suppkey BETWEEN 1 AND %d"
    param

let q2_sql param =
  Printf.sprintf
    "SELECT o_comment, l_comment FROM lineitem l, orders o, customer c WHERE \
     l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_name \
     LIKE '%%%s%%'"
    param

let q3_sql param =
  Printf.sprintf
    "SELECT count(*) FROM lineitem l, orders o, customer c WHERE \
     l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_name \
     LIKE '%%%s%%'"
    param

let q4_sql param =
  Printf.sprintf
    "SELECT o_orderkey, AVG(l_quantity) AS avgq FROM lineitem l, orders o \
     WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND %d GROUP \
     BY o_orderkey"
    param

(* Table II rows: (family, variant index, nominal PARAM, selectivity). *)
let q14_selectivities = [ (1, "10", 0.01); (2, "20", 0.02); (3, "50", 0.05);
                          (4, "100", 0.10); (5, "250", 0.25) ]

let q23_selectivities = [ (1, "0000", 0.66); (2, "00000", 0.066);
                          (3, "000000", 0.0066); (4, "0000000", 0.00066) ]

(** All 18 variants of Table II for a generated instance. *)
let variants (c : Dbgen.stats) : variant list =
  let q1 =
    List.map
      (fun (j, nominal, sel) ->
        let p = suppkey_param c sel in
        { vid = Printf.sprintf "Q1-%d" j;
          family = 1;
          nominal_param = nominal;
          target_selectivity = sel;
          param = string_of_int p;
          sql = q1_sql p })
      q14_selectivities
  in
  let q2 =
    List.map
      (fun (j, nominal, sel) ->
        let p = like_param c sel in
        { vid = Printf.sprintf "Q2-%d" j;
          family = 2;
          nominal_param = nominal;
          target_selectivity = sel;
          param = p;
          sql = q2_sql p })
      q23_selectivities
  in
  let q3 =
    List.map
      (fun (j, nominal, sel) ->
        let p = like_param c sel in
        { vid = Printf.sprintf "Q3-%d" j;
          family = 3;
          nominal_param = nominal;
          target_selectivity = sel;
          param = p;
          sql = q3_sql p })
      q23_selectivities
  in
  let q4 =
    List.map
      (fun (j, nominal, sel) ->
        let p = suppkey_param c sel in
        { vid = Printf.sprintf "Q4-%d" j;
          family = 4;
          nominal_param = nominal;
          target_selectivity = sel;
          param = string_of_int p;
          sql = q4_sql p })
      q14_selectivities
  in
  q1 @ q2 @ q3 @ q4

let find (c : Dbgen.stats) vid : variant =
  match List.find_opt (fun v -> String.equal v.vid vid) (variants c) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Queries.find: unknown variant %s" vid)

(** Measure the realized selectivity of a variant on an instance: the
    fraction of the dominant input table (lineitem for Q1/Q4, the join's
    lineitem side for Q2/Q3) that the predicate retains. *)
let measured_selectivity (db : Minidb.Database.t) (c : Dbgen.stats)
    (v : variant) : float =
  let count sql =
    match Minidb.Database.query db sql with
    | { Minidb.Executor.rows = [ { Minidb.Executor.values = [| Minidb.Value.Int n |]; _ } ]; _ } ->
      n
    | _ -> 0
  in
  match v.family with
  | 1 | 4 ->
    let n =
      count
        (Printf.sprintf
           "SELECT count(*) FROM lineitem WHERE l_suppkey BETWEEN 1 AND %s"
           v.param)
    in
    float_of_int n /. float_of_int (max 1 c.Dbgen.n_lineitem)
  | 2 | 3 ->
    let n =
      count
        (Printf.sprintf
           "SELECT count(*) FROM customer WHERE c_name LIKE '%%%s%%'" v.param)
    in
    float_of_int n /. float_of_int (max 1 c.Dbgen.n_customer)
  | _ -> 0.0
