lib/tpch/prng.mli:
