lib/tpch/workload.ml: Array Buffer Dbclient Dbgen List Minidb Minios Printf Prng String Value
