lib/tpch/tpch_schema.ml: Database List Minidb Printf
