lib/tpch/queries_full.ml: List Minidb Printf String
