lib/tpch/queries.ml: Dbgen Float List Minidb Printf String
