lib/tpch/prng.ml: Array Buffer Char Int64 Printf String
