lib/tpch/queries.mli: Dbgen Minidb
