lib/tpch/dbgen.mli: Database Format Minidb Prng Value
