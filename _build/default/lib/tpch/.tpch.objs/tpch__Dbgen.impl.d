lib/tpch/dbgen.ml: Array Database Float Format List Minidb Printf Prng Tpch_schema Value
