(** The 18 workload queries of Table II: four families (selection, join,
    join+count, join+aggregation) across a wide range of output-size to
    provenance-size ratios. Parameters are derived from the *target
    selectivity* and the generated instance's row counts, so the
    selectivity shape survives micro scaling. *)

type variant = {
  vid : string;  (** e.g. "Q1-3" *)
  family : int;  (** 1..4 *)
  nominal_param : string;  (** the paper's PARAM column *)
  target_selectivity : float;
  param : string;  (** realized parameter for the generated instance *)
  sql : string;
}

(** All 18 variants for a generated instance. *)
val variants : Dbgen.stats -> variant list

(** @raise Invalid_argument on unknown ids. *)
val find : Dbgen.stats -> string -> variant

(** Realized selectivity of a variant's parameter on the instance: the
    retained fraction of lineitem (Q1/Q4) or customer (Q2/Q3). *)
val measured_selectivity :
  Minidb.Database.t -> Dbgen.stats -> variant -> float
