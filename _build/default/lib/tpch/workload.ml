(** The paper's evaluation application (§IX-A) as a minios program.

    Three steps against the TPC-H database:
    - Insert: add [n_insert] fresh orders (the TPC-H refresh stream);
    - Select: run the chosen Table II query [n_select] times, writing
      results to an output file (which gives the OS side of the combined
      trace something to capture);
    - Update: modify [n_update] order comments.

    The statement stream is deterministic given the config, which is what
    makes server-excluded replay's in-order matching succeed. Step
    boundaries are exposed through [step_hook] so the harness can time
    Figure 7's bars. *)

open Minidb

type config = {
  query_sql : string;  (** the Select step's query *)
  n_insert : int;  (** paper: 1000 *)
  n_select : int;  (** paper: 10 *)
  n_update : int;  (** paper: 100 *)
  base_orderkey : int;  (** first fresh key for inserts: > max(o_orderkey) *)
  n_customer : int;  (** for generating insert rows *)
  out_path : string;  (** where the app writes query results *)
  config_path : string;  (** input file the app reads at startup *)
  insert_seed : int;
}

let default_config ~query_sql ~(stats : Dbgen.stats) =
  { query_sql;
    n_insert = 1000;
    n_select = 10;
    n_update = 100;
    base_orderkey = stats.Dbgen.n_orders + stats.Dbgen.n_lineitem + 1000;
    n_customer = stats.Dbgen.n_customer;
    out_path = "/app/out/results.csv";
    config_path = "/app/etc/app.conf";
    insert_seed = 7 }

(** Steps reported to the hook, in execution order. Figure 7 distinguishes
    the first (cold-cache) select from the rest. *)
type step = Insert_step | First_select | Other_selects | Update_step

let step_name = function
  | Insert_step -> "Inserts"
  | First_select -> "First Select"
  | Other_selects -> "Other Selects"
  | Update_step -> "Updates"

let render_rows rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Array.iteri
        (fun idx v ->
          if idx > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Value.to_raw_string v))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let insert_sql_of_row (row : Value.t array) =
  let fields =
    Array.to_list row |> List.map Value.to_string |> String.concat ", "
  in
  Printf.sprintf "INSERT INTO orders VALUES (%s)" fields

(** The application program. [step_hook] wraps each step's execution; the
    default just runs it. *)
let app ?(step_hook = fun _step body -> body ()) (cfg : config) :
    Minios.Program.program =
 fun env ->
  (* read the config file: an input the OS trace must attribute *)
  let _config_text = Minios.Program.read_file env cfg.config_path in
  let conn = Dbclient.Client.connect env ~db:"tpch" in
  (* Insert step: fresh orders with keys above everything existing *)
  step_hook Insert_step (fun () ->
      let rng = Prng.create ~seed:cfg.insert_seed in
      for k = 0 to cfg.n_insert - 1 do
        let row =
          Dbgen.order_row rng
            ~orderkey:(cfg.base_orderkey + k)
            ~n_customer:cfg.n_customer
        in
        ignore (Dbclient.Client.exec conn (insert_sql_of_row row))
      done);
  (* Select step: first (cold) select writes results to the output file *)
  step_hook First_select (fun () ->
      let rows = Dbclient.Client.query conn cfg.query_sql in
      Minios.Program.write_file env cfg.out_path (render_rows rows));
  step_hook Other_selects (fun () ->
      for _ = 2 to cfg.n_select do
        ignore (Dbclient.Client.query conn cfg.query_sql)
      done);
  (* Update step: touch the comments of the first n_update orders *)
  step_hook Update_step (fun () ->
      for k = 1 to cfg.n_update do
        let sql =
          Printf.sprintf
            "UPDATE orders SET o_comment = 'refreshed comment %d' WHERE \
             o_orderkey = %d"
            k k
        in
        ignore (Dbclient.Client.exec conn sql)
      done);
  Dbclient.Client.close conn

(** Install the application's file artifacts (binary, config) into a
    kernel's VFS; returns the binary path. *)
let install_app_files (kernel : Minios.Kernel.t) (cfg : config) : string =
  let vfs = Minios.Kernel.vfs kernel in
  let binary = "/app/bin/tpch-app" in
  Minios.Vfs.write_opaque vfs ~path:binary 250_000;
  Minios.Vfs.write_string vfs ~path:cfg.config_path
    (Printf.sprintf "query=%s\ninserts=%d\nselects=%d\nupdates=%d\n"
       cfg.query_sql cfg.n_insert cfg.n_select cfg.n_update);
  binary

let app_libs = [ "/usr/lib/libc.so.6"; "/opt/minidb/lib/libpq.so.5" ]

(** Install the C runtime the app links against. *)
let install_runtime (kernel : Minios.Kernel.t) =
  Minios.Vfs.write_opaque (Minios.Kernel.vfs kernel) ~path:"/usr/lib/libc.so.6"
    2_000_000

(** Program-registry name under which the app is registered for replay. *)
let registry_name = "tpch-app"
