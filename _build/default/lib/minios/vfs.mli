(** An in-memory virtual file system.

    Paths are absolute, [/]-separated strings; directories are implicit.
    File contents are either real bytes ([Data]) or size-only placeholders
    ([Opaque]) modeling large binary artifacts whose bytes never matter
    but whose sizes drive the package-size experiments. *)

type content = Data of string | Opaque of int

type file = { mutable content : content; mutable mtime : int }

type t

val create : unit -> t

(** Collapses duplicate slashes and trailing slashes.
    @raise Invalid_argument on relative paths. *)
val normalize : string -> string

val exists : t -> string -> bool
val find_opt : t -> string -> file option

val write : t -> path:string -> ?mtime:int -> content -> unit
val write_string : t -> path:string -> ?mtime:int -> string -> unit
val write_opaque : t -> path:string -> ?mtime:int -> int -> unit

(** Appends to a [Data] file, creating it if missing.
    @raise Invalid_argument on opaque files. *)
val append : t -> path:string -> ?mtime:int -> string -> unit

(** @raise Not_found on missing files.
    @raise Invalid_argument on opaque files. *)
val read : t -> string -> string

(** @raise Not_found on missing files. *)
val content : t -> string -> content

(** @raise Not_found on missing files. *)
val size : t -> string -> int

val content_size : content -> int
val remove : t -> string -> unit

(** All paths, sorted. *)
val paths : t -> string list

(** Paths strictly under a directory prefix. *)
val paths_under : t -> string -> string list

val remove_under : t -> string -> unit
val total_bytes : t -> int

(** @raise Not_found when [path] is missing in [src]. *)
val copy_file : src:t -> dst:t -> string -> unit

val copy_tree : src:t -> dst:t -> string -> unit
