(** The ptrace-style tracer: records the syscall stream and turns it into
    the OS (P_BB) portion of an execution trace.

    Process-process edges carry the fork point; process-file edges carry
    the interval from first open to last close per access mode (§VII-A).
    File contents are snapshotted at first read (CDE copy-on-access), so
    packaging ships what the execution saw even if the file was later
    overwritten. *)

type t

val create : unit -> t

(** Install on a kernel; subsequent syscalls are recorded and first-read
    contents snapshotted. *)
val attach : t -> Kernel.t -> unit

val detach : Kernel.t -> unit

val events : t -> Syscall.event list
val event_count : t -> int

(** Content of [path] as of its first traced read, falling back to the
    VFS's current content. *)
val snapshot_content : t -> Vfs.t -> string -> Vfs.content option

type file_access = {
  fa_pid : int;
  fa_path : string;
  fa_mode : Syscall.file_mode;
  fa_interval : Prov.Interval.t;  (** first open .. last close *)
}

(** Per-(pid, path, mode) merged access intervals. *)
val file_accesses : t -> file_access list

(** Distinct paths touched, with the modes used — what CDE/PTU copies. *)
val touched_paths : t -> (string * Syscall.file_mode list) list

type spawn_info = {
  sp_pid : int;
  sp_parent : int option;
  sp_name : string;
  sp_binary : string option;
  sp_time : int;
}

val spawns : t -> spawn_info list

(** Populate a trace (whose model must include P_BB's types) with the OS
    provenance of the recorded execution. *)
val build_bb_into : t -> Prov.Trace.t -> unit

(** Build a standalone P_BB-only trace. *)
val build_bb_trace : t -> Prov.Trace.t
