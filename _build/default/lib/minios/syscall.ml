(** Syscall events as observed by the ptrace-style tracer.

    The real LDV intercepts fork/execve/open/close through ptrace; our
    simulated kernel emits the corresponding event stream with logical
    timestamps. This stream is everything the PTU-style trace builder and
    the packaging logic consume. *)

type file_mode = Read | Write

let mode_name = function Read -> "read" | Write -> "write"

type event =
  | Spawned of {
      parent : int option;  (** [None] for the root process *)
      pid : int;
      name : string;
      binary : string option;  (** path of the executed binary, if any *)
      time : int;
    }
  | Exited of { pid : int; time : int }
  | Opened of { pid : int; path : string; mode : file_mode; time : int }
  | Closed of {
      pid : int;
      path : string;
      mode : file_mode;
      opened_at : int;
      time : int;
    }

let time_of = function
  | Spawned { time; _ }
  | Exited { time; _ }
  | Opened { time; _ }
  | Closed { time; _ } ->
    time

let pp ppf = function
  | Spawned { parent; pid; name; binary; time } ->
    Format.fprintf ppf "[%d] spawn pid=%d name=%s parent=%s binary=%s" time pid
      name
      (match parent with None -> "-" | Some p -> string_of_int p)
      (Option.value binary ~default:"-")
  | Exited { pid; time } -> Format.fprintf ppf "[%d] exit pid=%d" time pid
  | Opened { pid; path; mode; time } ->
    Format.fprintf ppf "[%d] open pid=%d %s %s" time pid (mode_name mode) path
  | Closed { pid; path; mode; opened_at; time } ->
    Format.fprintf ppf "[%d] close pid=%d %s %s (opened at %d)" time pid
      (mode_name mode) path opened_at
