lib/minios/program.ml: Fun Hashtbl Kernel Printf Syscall Vfs
