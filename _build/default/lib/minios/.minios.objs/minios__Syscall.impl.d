lib/minios/syscall.ml: Format Option
