lib/minios/tracer.ml: Hashtbl Kernel List Option Prov String Syscall Vfs
