lib/minios/vfs.mli:
