lib/minios/kernel.ml: Hashtbl List Option Printf Syscall Vfs
