lib/minios/program.mli: Kernel
