lib/minios/tracer.mli: Kernel Prov Syscall Vfs
