lib/minios/vfs.ml: Hashtbl List Printf String
