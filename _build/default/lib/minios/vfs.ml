(** An in-memory virtual file system.

    Paths are absolute, [/]-separated strings; directories are implicit.
    File contents are either real bytes ([Data]) or size-only placeholders
    ([Opaque]) used to model large binary artifacts — DBMS server binaries,
    shared libraries, VM base images — whose bytes never matter but whose
    sizes drive the package-size experiments (Figure 9, §IX-F). *)

type content = Data of string | Opaque of int

type file = { mutable content : content; mutable mtime : int }

type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 64 }

let normalize path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Vfs: path %S must be absolute" path);
  (* collapse duplicate slashes, drop trailing slash *)
  let parts = String.split_on_char '/' path |> List.filter (fun s -> s <> "") in
  "/" ^ String.concat "/" parts

let exists t path = Hashtbl.mem t.files (normalize path)

let find_opt t path = Hashtbl.find_opt t.files (normalize path)

let write t ~path ?(mtime = 0) content =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some f ->
    f.content <- content;
    f.mtime <- mtime
  | None -> Hashtbl.replace t.files path { content; mtime }

let write_string t ~path ?mtime s = write t ~path ?mtime (Data s)
let write_opaque t ~path ?mtime size = write t ~path ?mtime (Opaque size)

let append t ~path ?(mtime = 0) s =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some ({ content = Data old; _ } as f) ->
    f.content <- Data (old ^ s);
    f.mtime <- mtime
  | Some { content = Opaque _; _ } ->
    invalid_arg (Printf.sprintf "Vfs.append: %s is opaque" path)
  | None -> Hashtbl.replace t.files path { content = Data s; mtime }

let read t path =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some { content = Data s; _ } -> s
  | Some { content = Opaque _; _ } ->
    invalid_arg (Printf.sprintf "Vfs.read: %s is opaque" path)
  | None -> raise Not_found

let content t path =
  match find_opt t path with
  | Some f -> f.content
  | None -> raise Not_found

let size t path =
  match find_opt t path with
  | Some { content = Data s; _ } -> String.length s
  | Some { content = Opaque n; _ } -> n
  | None -> raise Not_found

let content_size = function Data s -> String.length s | Opaque n -> n

let remove t path = Hashtbl.remove t.files (normalize path)

(** All paths, sorted. *)
let paths t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort String.compare

(** Paths under a directory prefix (e.g. "/var/minidb"). *)
let paths_under t prefix =
  let prefix = normalize prefix in
  let pl = String.length prefix in
  List.filter
    (fun p ->
      String.length p > pl
      && String.sub p 0 pl = prefix
      && (prefix = "/" || p.[pl] = '/'))
    (paths t)

let remove_under t prefix =
  List.iter (remove t) (paths_under t prefix)

let total_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + content_size f.content) t.files 0

(** Copy a single file between file systems (packaging primitive). *)
let copy_file ~src ~dst path =
  match find_opt src path with
  | Some f -> write dst ~path ~mtime:f.mtime f.content
  | None -> raise Not_found

(** Copy an entire subtree. *)
let copy_tree ~src ~dst prefix =
  List.iter (copy_file ~src ~dst) (paths_under src prefix)
