(** GProM-style reenactment of update operations (§VII-B).

    The provenance of a modification must be captured *before* it executes,
    because the pre-versions it reads disappear afterwards. GProM reenacts
    the update as a query; we build exactly that query — a SELECT of the
    rows the modification will touch — run it through the provenance
    executor, and only then let the DB apply the modification. The
    reenactment query's cost is the extra audit overhead the paper reports
    for the Update step of Figure 7a. *)

open Minidb

type reenactment = {
  reenact_sql : string;  (** the SELECT that simulates the modification *)
  pre_state : Provenance_sql.provenance_result;
      (** affected rows and their lineage before the modification ran *)
}

(** Build the reenactment SELECT for an UPDATE or DELETE statement. *)
let reenactment_query (stmt : Sql_ast.statement) : string =
  match stmt with
  | Sql_ast.Update { table; where; _ } | Sql_ast.Delete { table; where } ->
    let sel =
      Sql_ast.simple_select ?where
        ~from:[ Sql_ast.from_table table ]
        [ Sql_ast.Star ]
    in
    Pretty.statement_to_string (Sql_ast.Select sel)
  | Sql_ast.Insert _ ->
    Errors.unsupported "inserts read no pre-state; no reenactment needed"
  | _ -> Errors.unsupported "reenactment applies to UPDATE and DELETE only"

(** Capture the pre-state of a modification by reenacting it as a query. *)
let capture (db : Database.t) (stmt : Sql_ast.statement) : reenactment =
  let reenact_sql = reenactment_query stmt in
  { reenact_sql; pre_state = Provenance_sql.query_lineage db reenact_sql }

(** Reenact-then-execute: capture provenance, run the modification, and
    return both. The returned [dml_info] is the DB's own account of what
    was written; [reenactment] is what the auditor stores. *)
let execute (db : Database.t) (stmt : Sql_ast.statement) :
    reenactment option * Database.dml_info =
  match stmt with
  | Sql_ast.Insert { table; columns; source } ->
    (None, Database.run_insert db ~table ~columns ~source)
  | Sql_ast.Update { table; sets; where } ->
    let r = capture db stmt in
    (Some r, Database.run_update db ~table ~sets ~where)
  | Sql_ast.Delete { table; where } ->
    let r = capture db stmt in
    (Some r, Database.run_delete db ~table ~where)
  | _ -> Errors.unsupported "Reenact.execute expects a DML statement"
