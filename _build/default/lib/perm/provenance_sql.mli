(** The Perm-style provenance interface over MiniDB: run a query with
    lineage collection (the moral equivalent of the [PROVENANCE] keyword
    rewrite) and expose per-row provenance. *)

open Minidb

type provenance_row = {
  values : Value.t array;
  lineage : Tid.Set.t;  (** Lin(Q, t) for this result row *)
  witnesses : Tid.Set.t list Lazy.t;  (** why-provenance (lazy: expensive) *)
  derivations : int Lazy.t;  (** bag multiplicity under N[X] *)
}

type provenance_result = {
  schema : Schema.t;
  rows : provenance_row list;
  read_tables : string list;  (** base tables the query scanned *)
}

(** Execute a SELECT (or [PROVENANCE SELECT]) with lineage collection.
    @raise Errors.Db_error on non-SELECT statements. *)
val query_lineage : Database.t -> string -> provenance_result

(** Union of all rows' lineage. *)
val total_lineage : provenance_result -> Tid.Set.t

(** Byte footprint of the lineage's tuple versions — what a
    server-included package must persist. *)
val lineage_bytes : Database.t -> Tid.Set.t -> int

(** Render the result the way Perm's rewritten query would: one output row
    per (result row, lineage tuple) with provenance columns appended. *)
val expand_perm_style : provenance_result -> Value.t array list
