(** GProM-style reenactment of update operations (§VII-B): the provenance
    of a modification is captured *before* it executes by reenacting it as
    a query over the pre-state. *)

open Minidb

type reenactment = {
  reenact_sql : string;  (** the SELECT simulating the modification *)
  pre_state : Provenance_sql.provenance_result;
      (** affected rows and their lineage before the modification ran *)
}

(** The reenactment SELECT for an UPDATE or DELETE.
    @raise Errors.Db_error for other statements. *)
val reenactment_query : Sql_ast.statement -> string

(** Capture the pre-state of a modification without executing it. *)
val capture : Database.t -> Sql_ast.statement -> reenactment

(** Reenact-then-execute: [None] reenactment for inserts (no pre-state).
    @raise Errors.Db_error on non-DML statements. *)
val execute :
  Database.t -> Sql_ast.statement -> reenactment option * Database.dml_info
