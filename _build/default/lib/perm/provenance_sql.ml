(** The Perm-style provenance interface over MiniDB.

    Perm rewrites a query marked with the [PROVENANCE] keyword so that each
    result tuple comes back together with the input tuples it depends on
    (its Lineage). MiniDB's executor propagates annotations natively, so
    the "rewrite" here consists of running the query with annotation
    collection and exposing the per-row lineage — same observable
    behaviour, same extra cost proportional to provenance size. *)

open Minidb

type provenance_row = {
  values : Value.t array;
  lineage : Tid.Set.t;  (** Lin(Q, t) for this result row *)
  witnesses : Tid.Set.t list Lazy.t;
      (** why-provenance: one witness per derivation. Lazy: computing
          witness sets for a large aggregate is expensive and the audit
          path never needs them. *)
  derivations : int Lazy.t;  (** bag multiplicity under N[X] *)
}

type provenance_result = {
  schema : Schema.t;
  rows : provenance_row list;
  read_tables : string list;  (** base tables the query scanned *)
}

(** Execute [SELECT ...] and return rows with their lineage.

    This is the moral equivalent of prefixing the query with Perm's
    [PROVENANCE] keyword: it costs a provenance-computing execution, which
    is what the paper's server-included audit pays on every query. *)
let query_lineage (db : Database.t) (sql : string) : provenance_result =
  match Sql_parser.parse sql with
  | Sql_ast.Select s | Sql_ast.Provenance s ->
    ignore (Database.tick db);
    let plan = Planner.plan_select (Database.catalog db) s in
    let result = Executor.run plan in
    { schema = result.Executor.schema;
      rows =
        List.map
          (fun (r : Executor.arow) ->
            { values = r.Executor.values;
              lineage = Annotation.lineage r.Executor.ann;
              witnesses = lazy (Annotation.why r.Executor.ann);
              derivations = lazy (Annotation.derivation_count r.Executor.ann) })
          result.Executor.rows;
      read_tables = Planner.base_tables plan }
  | _ -> Errors.unsupported "query_lineage expects a SELECT statement"

(** Union of all rows' lineage: every tuple version the query actually
    used. *)
let total_lineage (r : provenance_result) : Tid.Set.t =
  List.fold_left
    (fun acc row -> Tid.Set.union acc row.lineage)
    Tid.Set.empty r.rows

(** Byte footprint of the provenance (the tuple versions in the lineage),
    which is what a server-included package must persist. *)
let lineage_bytes (db : Database.t) (lineage : Tid.Set.t) : int =
  Tid.Set.fold
    (fun tid acc ->
      match Catalog.find_opt (Database.catalog db) tid.Tid.table with
      | None -> acc
      | Some table -> (
        match Table.find_version table tid with
        | None -> acc
        | Some tv ->
          acc
          + Array.fold_left
              (fun a v -> a + Value.byte_size v)
              16 tv.Table.values))
    lineage 0

(** Render a provenance result the way Perm's rewritten query would: one
    output row per (result row, lineage tuple) pair with provenance columns
    appended. *)
let expand_perm_style (r : provenance_result) : Value.t array list =
  List.concat_map
    (fun row ->
      if Tid.Set.is_empty row.lineage then
        [ Array.append row.values [| Value.Null; Value.Null; Value.Null |] ]
      else
        Tid.Set.elements row.lineage
        |> List.map (fun (tid : Tid.t) ->
               Array.append row.values
                 [| Value.Str tid.Tid.table;
                    Value.Int tid.Tid.rid;
                    Value.Int tid.Tid.version |]))
    r.rows
