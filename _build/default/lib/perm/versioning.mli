(** Tuple-version bookkeeping: the paper's [prov_rowid]/[prov_v]/
    [prov_usedby]/[prov_p] schema extension, realized as metadata over
    MiniDB's native versioning. *)

open Minidb

type usage = { used_by_qid : int; used_by_pid : int; at : int }

type t

val create : Database.t -> t

(** Mark a table as provenance-enabled (the paper's lazy first-access
    schema extension); returns [true] the first time. *)
val enable_table : t -> string -> bool

val enabled_tables : t -> string list

(** Record that [tid] was used by statement [qid] of process [pid]. *)
val record_usage : t -> Tid.t -> qid:int -> pid:int -> at:int -> unit

val usages_of : t -> Tid.t -> usage list
val used_tids : t -> Tid.t list

(** Stored values of a tuple version, if it exists in history. *)
val lookup_version : t -> Tid.t -> Value.t array option

(** Current live version of a row, if any. *)
val live_version : t -> table:string -> rid:int -> Tid.t option
