(** Tuple-version bookkeeping utilities.

    The paper implements versioning by extending each accessed relation
    with [prov_rowid]/[prov_v]/[prov_usedby]/[prov_p] attributes and
    updating them as statements run (§VII-B). MiniDB versions tuples
    natively, so these helpers expose the same information — which version
    of which row existed when, and which statement/process used it —
    without the schema rewrite. The [usage] registry reproduces the
    [prov_usedby]/[prov_p] bookkeeping for inspection and tests. *)

open Minidb

type usage = { used_by_qid : int; used_by_pid : int; at : int }

type t = {
  db : Database.t;
  usages : (Tid.t, usage list ref) Hashtbl.t;
  (* tables whose versioning has been "enabled" — in the paper, the lazy
     ALTER TABLE performed on first access *)
  enabled : (string, unit) Hashtbl.t;
}

let create db = { db; usages = Hashtbl.create 256; enabled = Hashtbl.create 16 }

(** Mark a table as provenance-enabled; idempotent. Returns [true] the
    first time, which is when the paper's implementation pays the schema
    extension cost. *)
let enable_table t name =
  let name = String.lowercase_ascii name in
  if Hashtbl.mem t.enabled name then false
  else begin
    Hashtbl.replace t.enabled name ();
    true
  end

let enabled_tables t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.enabled [] |> List.sort compare

(** Record that [tid] was used by statement [qid] issued by process
    [pid] — the [prov_usedby]/[prov_p] columns of the paper. *)
let record_usage t tid ~qid ~pid ~at =
  let u = { used_by_qid = qid; used_by_pid = pid; at } in
  match Hashtbl.find_opt t.usages tid with
  | Some r -> r := u :: !r
  | None -> Hashtbl.replace t.usages tid (ref [ u ])

let usages_of t tid =
  match Hashtbl.find_opt t.usages tid with Some r -> List.rev !r | None -> []

let used_tids t =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) t.usages []
  |> List.sort Tid.compare

(** Fetch the stored values of a tuple version, if it still exists in the
    table's history. *)
let lookup_version t (tid : Tid.t) : Value.t array option =
  match Catalog.find_opt (Database.catalog t.db) tid.Tid.table with
  | None -> None
  | Some table ->
    Option.map
      (fun (tv : Table.tuple_version) -> tv.Table.values)
      (Table.find_version table tid)

(** Current live version of a row, if any. *)
let live_version t ~table ~rid : Tid.t option =
  match Catalog.find_opt (Database.catalog t.db) table with
  | None -> None
  | Some tbl ->
    Option.map
      (fun (tv : Table.tuple_version) -> tv.Table.tid)
      (Table.find_live tbl ~rid)
