lib/perm/provenance_sql.mli: Database Lazy Minidb Schema Tid Value
