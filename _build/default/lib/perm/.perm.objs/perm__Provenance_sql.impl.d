lib/perm/provenance_sql.ml: Annotation Array Catalog Database Errors Executor Lazy List Minidb Planner Schema Sql_ast Sql_parser Table Tid Value
