lib/perm/versioning.ml: Catalog Database Hashtbl List Minidb Option String Table Tid Value
