lib/perm/reenact.ml: Database Errors Minidb Pretty Provenance_sql Sql_ast
