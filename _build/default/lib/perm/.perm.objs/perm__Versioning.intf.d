lib/perm/versioning.mli: Database Minidb Tid Value
