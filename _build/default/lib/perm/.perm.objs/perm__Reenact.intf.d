lib/perm/reenact.mli: Database Minidb Provenance_sql Sql_ast
