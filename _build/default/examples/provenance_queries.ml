(* Provenance queries over combined execution traces.

   Rebuilds the paper's Figure 2 trace by hand, then demonstrates what the
   linked OS+DB provenance model of §IV-VI can answer:
   - reachability ("does C depend on A?") with temporal pruning,
   - the Figure 6 examples where interval annotations rule dependencies
     in or out,
   - exports to PROV-N / PROV-JSON / graphviz.

   Run with:  dune exec examples/provenance_queries.exe *)

open Prov

let tup i = Minidb.Tid.make ~table:"db" ~rid:i ~version:i
let tup_id i = Lineage_model.tuple_id (tup i)

(* Figure 2: P1 reads files A and B and runs two inserts; P2 queries and
   writes file C. *)
let figure2 () =
  let t = Combined.create () in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
  List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C" ];
  List.iter (fun i -> ignore (Lineage_model.add_tuple t (tup i))) [ 1; 2; 3; 4; 5 ];
  ignore (Lineage_model.add_statement t ~qid:1 ~kind:Lineage_model.Insert ~sql:"INSERT .. t1,t2");
  ignore (Lineage_model.add_statement t ~qid:2 ~kind:Lineage_model.Insert ~sql:"INSERT .. t3");
  ignore (Lineage_model.add_statement t ~qid:3 ~kind:Lineage_model.Query ~sql:"SELECT ..");
  ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:(Interval.make 1 6));
  ignore (Bb_model.read_from t ~pid:1 ~path:"B" ~time:(Interval.make 7 8));
  ignore (Combined.run t ~pid:1 ~qid:1 ~time:(Interval.point 5));
  ignore (Lineage_model.has_returned t ~qid:1 ~tid:(tup 1) ~time:(Interval.point 5));
  ignore (Lineage_model.has_returned t ~qid:1 ~tid:(tup 2) ~time:(Interval.point 5));
  ignore (Combined.run t ~pid:1 ~qid:2 ~time:(Interval.point 8));
  ignore (Lineage_model.has_returned t ~qid:2 ~tid:(tup 3) ~time:(Interval.point 8));
  ignore (Combined.run t ~pid:2 ~qid:3 ~time:(Interval.point 9));
  ignore (Lineage_model.has_read t ~qid:3 ~tid:(tup 1) ~time:(Interval.point 9));
  ignore (Lineage_model.has_read t ~qid:3 ~tid:(tup 3) ~time:(Interval.point 9));
  ignore (Lineage_model.has_returned t ~qid:3 ~tid:(tup 4) ~time:(Interval.point 9));
  ignore (Lineage_model.has_returned t ~qid:3 ~tid:(tup 5) ~time:(Interval.point 9));
  ignore (Combined.read_from_db t ~pid:2 ~tid:(tup 4) ~time:(Interval.point 9));
  ignore (Combined.read_from_db t ~pid:2 ~tid:(tup 5) ~time:(Interval.point 9));
  ignore (Bb_model.has_written t ~pid:2 ~path:"C" ~time:(Interval.make 7 12));
  List.iter
    (fun (r, s) -> Lineage_model.depends_on t ~result:(tup r) ~source:(tup s))
    [ (4, 1); (4, 3); (5, 1); (5, 3) ];
  t

let yn b = if b then "yes" else "no"

let () =
  let t = figure2 () in
  Format.printf "Figure 2 trace: %a@.@." Query.pp_stats (Query.stats t);

  print_endline "Reachability queries (Definition 11 inference):";
  List.iter
    (fun (q, target, source) ->
      Printf.printf "  %-46s %s\n" q
        (yn (Dependency.depends_on t ~target ~source)))
    [ ("does file C depend on file A?", "file:C", "file:A");
      ("does file C depend on tuple t1?", "file:C", tup_id 1);
      ("does file C depend on tuple t2 (never read)?", "file:C", tup_id 2);
      ("does tuple t1 depend on file B (read later)?", tup_id 1, "file:B");
      ("does tuple t3 depend on file B?", tup_id 3, "file:B") ];

  print_endline "\nEverything the output C was derived from:";
  List.iter (Printf.printf "  %s\n") (Dependency.dependencies_of t "file:C");

  (* Figure 6: the same chain under three temporal annotations *)
  let chain ~read_a ~write_b ~read_b ~write_c =
    let t = Trace.create Bb_model.model in
    ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
    ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
    List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C" ];
    ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:read_a);
    ignore (Bb_model.has_written t ~pid:1 ~path:"B" ~time:write_b);
    ignore (Bb_model.read_from t ~pid:2 ~path:"B" ~time:read_b);
    ignore (Bb_model.has_written t ~pid:2 ~path:"C" ~time:write_c);
    Dependency.depends_on t ~target:"file:C" ~source:"file:A"
  in
  print_endline "\nFigure 6: temporal annotations decide dependencies:";
  Printf.printf "  6a (P2 stopped reading B before P1 wrote it):  C dep A? %s\n"
    (yn
       (chain ~read_a:(Interval.make 2 3) ~write_b:(Interval.make 6 7)
          ~read_b:(Interval.make 1 5) ~write_c:(Interval.make 6 6)));
  Printf.printf "  6b (overlapping write/read):                   C dep A? %s\n"
    (yn
       (chain ~read_a:(Interval.make 1 1) ~write_b:(Interval.make 4 7)
          ~read_b:(Interval.make 2 5) ~write_c:(Interval.make 1 6)));

  (* exports *)
  print_endline "\nPROV-N rendering (excerpt):";
  let provn = Prov_export.to_prov_n t in
  String.split_on_char '\n' provn
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (Printf.printf "  %s\n");
  Printf.printf "  ... (%d lines; PROV-JSON: %d bytes; dot: %d bytes)\n"
    (List.length (String.split_on_char '\n' provn))
    (String.length (Prov_export.to_prov_json t))
    (String.length (Dot.to_dot t))
