(* Quickstart: make a DB application repeatable in ~60 lines.

   The application below reads a threshold from a config file, asks the
   database for every reading above it, and writes the matches to a report
   file. We audit one execution, build both LDV package kinds, re-execute
   them, and verify that the replays reproduce the original outputs.

   Run with:  dune exec examples/quickstart.exe *)

let app_name = "sensor-report"

(* 1. The application: ordinary code against the Program/Client APIs.
   Nothing in it knows whether it is being monitored or replayed. *)
let application env =
  let threshold = Minios.Program.read_file env "/etc/sensor.conf" in
  let conn = Dbclient.Client.connect env ~db:"sensors" in
  let rows =
    Dbclient.Client.query conn
      (Printf.sprintf
         "SELECT station, reading FROM readings WHERE reading > %s ORDER BY \
          reading DESC"
         (String.trim threshold))
  in
  let report =
    String.concat "\n"
      (List.map
         (fun row ->
           Printf.sprintf "%s: %s"
             (Minidb.Value.to_raw_string row.(0))
             (Minidb.Value.to_raw_string row.(1)))
         rows)
  in
  Minios.Program.write_file env "/home/alice/report.txt" report;
  Dbclient.Client.close conn

(* 2. The environment: a database and a simulated OS holding the app's
   files. *)
let make_environment () =
  let db = Minidb.Database.create ~name:"sensors" () in
  ignore
    (Minidb.Database.exec_script db
       "CREATE TABLE readings (station TEXT, reading INT);\n\
        INSERT INTO readings VALUES ('helsinki', 12), ('nairobi', 31), \
        ('lima', 18), ('oslo', 7), ('quito', 25)");
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Minios.Vfs.write_string (Minios.Kernel.vfs kernel) ~path:"/etc/sensor.conf" "15\n";
  Minios.Vfs.write_opaque (Minios.Kernel.vfs kernel) ~path:"/usr/bin/sensor-report" 80_000;
  (kernel, server)

let () =
  Minios.Program.register ~name:app_name application;
  List.iter
    (fun packaging ->
      (* 3. Audit one execution. *)
      let kernel, server = make_environment () in
      let audit =
        Ldv_core.Audit.run ~packaging kernel server ~app_name
          ~app_binary:"/usr/bin/sensor-report" application
      in
      (* 4. Build the package. *)
      let pkg =
        match packaging with
        | Ldv_core.Audit.Ptu_baseline -> Ldv_core.Ptu.build audit
        | _ -> Ldv_core.Package.build audit
      in
      (* 5. Re-execute it somewhere else (a fresh kernel) and verify. *)
      let replay = Ldv_core.Replay.execute pkg in
      let verdict =
        match Ldv_core.Replay.verify ~audit replay with
        | [] -> "replay reproduced the original outputs"
        | problems -> "DIVERGED: " ^ String.concat "; " problems
      in
      Printf.printf "%-16s %-9s %s\n"
        (Ldv_core.Package.kind_name pkg.Ldv_core.Package.kind)
        (Ldv_core.Report.human_bytes (Ldv_core.Package.total_bytes pkg))
        verdict;
      (* the relevant DB subset: only the three readings above threshold *)
      if packaging = Ldv_core.Audit.Included then begin
        let relevant = Ldv_core.Slice.relevant audit in
        Printf.printf "  relevant DB subset: %d of 5 tuples\n"
          (Minidb.Tid.Set.cardinal relevant)
      end)
    [ Ldv_core.Audit.Included; Ldv_core.Audit.Excluded ];
  print_endline "quickstart done."
