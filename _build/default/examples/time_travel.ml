(* Time travel and transaction reenactment.

   The paper's challenge 3 (§I): "To successfully repeat an execution, the
   DB has to be restored to the state valid at the start of the
   application." MiniDB's native tuple versioning gives two tools beyond
   LDV's packaged-subset restore:

   - AS OF queries read any past snapshot directly (the temporal-DB
     alternative the related work discusses);
   - GProM-style transaction reenactment relates a transaction's effects
     to the pre-transaction state, composing away its internal
     intermediate versions.

   Run with:  dune exec examples/time_travel.exe *)

open Minidb
module B = Gprom.Backend.Minidb_backend

let () =
  let db = Database.create ~name:"bank" () in
  ignore
    (Database.exec_script db
       "CREATE TABLE accounts (id INT, owner TEXT, balance INT);\n\
        INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 50), (3, \
        'carol', 75)");
  let before_business = Database.clock db in

  (* --- a transfer, as a reenacted transaction -------------------- *)
  let tx =
    Gprom.Tx_reenact.run (module B) db
      [ "UPDATE accounts SET balance = balance - 30 WHERE owner = 'alice'";
        "UPDATE accounts SET balance = balance + 30 WHERE owner = 'bob'";
        (* a correction within the same transaction: alice sends 10 more *)
        "UPDATE accounts SET balance = balance - 10 WHERE owner = 'alice'";
        "UPDATE accounts SET balance = balance + 10 WHERE owner = 'bob'" ]
  in
  Format.printf "%a@." Gprom.Tx_reenact.pp tx;
  (* four updates produced four versions for alice/bob, but only the final
     two survive; each traces to its pre-transaction original *)
  assert (List.length tx.Gprom.Tx_reenact.tx_written = 2);
  assert (List.length tx.Gprom.Tx_reenact.tx_intermediate = 2);
  assert (Minidb.Tid.Set.cardinal tx.Gprom.Tx_reenact.tx_pre_state = 2);

  (* --- an aborted transaction leaves no trace --------------------- *)
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "UPDATE accounts SET balance = 0");
  ignore (Database.exec db "ROLLBACK");

  (* --- AS OF: read the pre-transfer snapshot ---------------------- *)
  let show title r =
    Format.printf "%s:@." title;
    List.iter
      (fun (row : Executor.arow) ->
        Format.printf "  %-6s %s@."
          (Value.to_raw_string row.Executor.values.(0))
          (Value.to_raw_string row.Executor.values.(1)))
      r.Executor.rows
  in
  show "current balances"
    (Database.query db "SELECT owner, balance FROM accounts");
  show "balances before the transfer"
    (Database.query db
       (Printf.sprintf
          "SELECT owner, balance FROM accounts AS OF %d" before_business));

  (* snapshots join with the present: who gained money since? *)
  let gained =
    Database.query db
      (Printf.sprintf
         "SELECT now.owner FROM accounts now JOIN accounts AS OF %d old ON \
          now.id = old.id WHERE now.balance > old.balance"
         before_business)
  in
  (match Executor.result_values gained with
  | [ [| Value.Str "bob" |] ] -> print_endline "only bob gained money (correct)"
  | _ -> failwith "unexpected gainers");

  (* and the snapshot itself is stable under further change *)
  ignore (Database.exec db "DELETE FROM accounts WHERE owner = 'carol'");
  let old_count =
    Database.query db
      (Printf.sprintf "SELECT count(*) FROM accounts AS OF %d" before_business)
  in
  (match Executor.result_values old_count with
  | [ [| Value.Int 3 |] ] -> print_endline "snapshot unaffected by later delete"
  | _ -> failwith "snapshot drifted");
  print_endline "time_travel done."
