(* Alice's halo finder: the running example of the paper's §I, Figure 1.

   Alice's application consists of two processes. P1 reads a simulation
   file f1 and inserts candidate halos into the Sky survey DB (tuple t1).
   P2 runs a query joining her candidates with the survey's observational
   catalog (tuples owned by "other experiments") and writes confirmed halos
   to f2.

   The points the paper makes with this example, demonstrated below:
   - the catalog tuple that the query never touched (the paper's t2) is
     NOT in the package;
   - the tuples Alice's own run created (the paper's t1/t3) are NOT in the
     package either — re-execution recreates them;
   - the catalog tuples the query did use ARE in the package, so Bob can
     re-execute without any access to the survey DB.

   Run with:  dune exec examples/halo_finder.exe *)

open Ldv_core

let halo_finder env =
  (* P1: ingest candidates from the simulation file *)
  ignore
    (Minios.Program.spawn env ~name:"ingest" ~binary:"/opt/halo/bin/ingest"
       (fun env ->
         let sim = Minios.Program.read_file env "/data/simulation.dat" in
         let conn = Dbclient.Client.connect env ~db:"skyserver" in
         List.iteri
           (fun i line ->
             if String.length line > 0 then
               ignore
                 (Dbclient.Client.exec conn
                    (Printf.sprintf
                       "INSERT INTO candidates VALUES (%d, '%s')" (i + 1) line)))
           (String.split_on_char '\n' sim);
         Dbclient.Client.close conn));
  (* P2: confirm candidates against the observational catalog *)
  ignore
    (Minios.Program.spawn env ~name:"confirm" ~binary:"/opt/halo/bin/confirm"
       (fun env ->
         let conn = Dbclient.Client.connect env ~db:"skyserver" in
         let rows =
           Dbclient.Client.query conn
             "SELECT c.region, o.magnitude FROM candidates c, catalog o \
              WHERE c.region = o.region AND o.magnitude > 20"
         in
         let out =
           String.concat "\n"
             (List.map
                (fun row ->
                  Printf.sprintf "halo in %s (mag %s)"
                    (Minidb.Value.to_raw_string row.(0))
                    (Minidb.Value.to_raw_string row.(1)))
                rows)
         in
         Minios.Program.write_file env "/data/halos.txt" out;
         Dbclient.Client.close conn))

let () =
  (* The Sky survey DB: a catalog populated by *other* experiments. *)
  let db = Minidb.Database.create ~name:"skyserver" () in
  ignore
    (Minidb.Database.exec_script db
       "CREATE TABLE catalog (region TEXT, magnitude INT);\n\
        CREATE TABLE candidates (id INT, region TEXT);\n\
        INSERT INTO catalog VALUES ('virgo', 22), ('fornax', 19), ('coma', 25)");
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  let vfs = Minios.Kernel.vfs kernel in
  Minios.Vfs.write_string vfs ~path:"/data/simulation.dat" "virgo\ncoma";
  List.iter
    (fun p -> Minios.Vfs.write_opaque vfs ~path:p 120_000)
    [ "/opt/halo/bin/halo-finder"; "/opt/halo/bin/ingest"; "/opt/halo/bin/confirm" ];

  Minios.Program.register ~name:"halo-finder" halo_finder;
  let audit =
    Audit.run ~packaging:Audit.Included kernel server ~app_name:"halo-finder"
      ~app_binary:"/opt/halo/bin/halo-finder" halo_finder
  in

  (* Which DB tuples must travel with the package? *)
  let relevant = Slice.relevant audit in
  Printf.printf "relevant tuple versions (packaged):\n";
  Minidb.Tid.Set.iter
    (fun tid -> Printf.printf "  %s\n" (Minidb.Tid.to_string tid))
    relevant;
  (* 'fornax' (mag 19 <= 20) is the paper's t2: connected to nothing.
     Alice's own candidates are the paper's t1/t3: recreated on replay. *)
  assert (Minidb.Tid.Set.cardinal relevant = 2);
  assert (Minidb.Tid.Set.for_all (fun t -> t.Minidb.Tid.table = "catalog") relevant);

  (* The combined trace answers Figure 1's provenance questions. *)
  let trace = audit.Audit.trace in
  Printf.printf "\noutput /data/halos.txt depends on:\n";
  List.iter
    (fun d -> Printf.printf "  %s\n" d)
    (Prov.Dependency.dependencies_of trace "file:/data/halos.txt");
  (* the output transitively depends on the simulation input through the
     DB: file -> insert -> tuple -> query -> result -> file *)
  assert
    (Prov.Dependency.depends_on trace ~target:"file:/data/halos.txt"
       ~source:"file:/data/simulation.dat");

  (* Package and hand to Bob: replay on a fresh machine, no survey DB. *)
  let pkg = Package.build audit in
  let replay = Replay.execute pkg in
  (match Replay.verify ~audit replay with
  | [] ->
    Printf.printf "\nBob's replay reproduced Alice's halos (%s package)\n"
      (Report.human_bytes (Package.total_bytes pkg))
  | problems ->
    List.iter (fun p -> Printf.printf "DIVERGENCE: %s\n" p) problems;
    exit 1);
  print_endline (List.assoc "/data/halos.txt" replay.Replay.out_files)
