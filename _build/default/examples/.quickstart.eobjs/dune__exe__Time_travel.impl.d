examples/time_travel.ml: Array Database Executor Format Gprom List Minidb Printf Value
