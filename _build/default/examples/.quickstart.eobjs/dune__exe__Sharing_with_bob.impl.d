examples/sharing_with_bob.ml: Array Audit Dbclient Ldv_core List Minidb Minios Package Printf Replay Report String Tpch
