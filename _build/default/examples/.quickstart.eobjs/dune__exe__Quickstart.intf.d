examples/quickstart.mli:
