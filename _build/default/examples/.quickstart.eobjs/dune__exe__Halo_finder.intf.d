examples/halo_finder.mli:
