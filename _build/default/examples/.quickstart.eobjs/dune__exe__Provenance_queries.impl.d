examples/provenance_queries.ml: Bb_model Combined Dependency Dot Format Interval Lineage_model List Minidb Printf Prov Prov_export Query String Trace
