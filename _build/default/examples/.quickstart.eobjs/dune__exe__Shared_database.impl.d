examples/shared_database.ml: Array Audit Dbclient Ldv_core List Minidb Minios Package Printf Replay Slice String
