examples/provenance_queries.mli:
