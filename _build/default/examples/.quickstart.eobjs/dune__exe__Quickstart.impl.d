examples/quickstart.ml: Array Dbclient Ldv_core List Minidb Minios Printf String
