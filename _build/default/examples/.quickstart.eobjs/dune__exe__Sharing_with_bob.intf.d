examples/sharing_with_bob.mli:
