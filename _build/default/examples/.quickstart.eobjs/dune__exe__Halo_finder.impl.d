examples/halo_finder.ml: Array Audit Dbclient Ldv_core List Minidb Minios Package Printf Prov Replay Report Slice String
