(* Bob's three ways to use Alice's package (§II):

     (i)  re-execute the application in its entirety
          -> server-included package, full replay;
     (ii) re-execute without reading data from the original DB
          -> server-excluded package: recorded responses stand in for the
             DB, so Bob needs neither the server binaries nor the data;
     (iii) provide his own inputs to the application
          -> server-included package re-run with a modified program over
             the packaged DB subset.

   Run with:  dune exec examples/sharing_with_bob.exe *)

open Ldv_core

(* Alice's app: average quantity per supplier region, written to a file.
   The threshold comes from a config file — the input Bob will change. *)
let make_app ~config_path ~out_path =
  fun env ->
  let threshold = String.trim (Minios.Program.read_file env config_path) in
  let conn = Dbclient.Client.connect env ~db:"tpch" in
  let rows =
    Dbclient.Client.query conn
      (Printf.sprintf
         "SELECT l_suppkey, avg(l_quantity) AS avgq FROM lineitem WHERE \
          l_suppkey <= %s GROUP BY l_suppkey"
         threshold)
  in
  let out =
    String.concat "\n"
      (List.map
         (fun row ->
           Printf.sprintf "supplier %s: avg quantity %s"
             (Minidb.Value.to_raw_string row.(0))
             (Minidb.Value.to_raw_string row.(1)))
         rows)
  in
  Minios.Program.write_file env out_path out;
  Dbclient.Client.close conn

let config_path = "/home/alice/threshold.conf"
let out_path = "/home/alice/avg_quantities.txt"
let app = make_app ~config_path ~out_path

let alice_environment () =
  let db, _stats = Tpch.Dbgen.setup ~sf:0.0005 ~seed:7 () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  let vfs = Minios.Kernel.vfs kernel in
  Minios.Vfs.write_string vfs ~path:config_path "3\n";
  Minios.Vfs.write_opaque vfs ~path:"/home/alice/bin/avgq" 64_000;
  (kernel, server)

let audit_with packaging =
  let kernel, server = alice_environment () in
  Audit.run ~packaging kernel server ~app_name:"avgq"
    ~app_binary:"/home/alice/bin/avgq" app

let () =
  Minios.Program.register ~name:"avgq" app;

  (* --- (i) full re-execution ------------------------------------- *)
  let audit_inc = audit_with Audit.Included in
  let pkg_inc = Package.build audit_inc in
  let replay = Replay.execute pkg_inc in
  assert (Replay.verify ~audit:audit_inc replay = []);
  Printf.printf "(i)   full re-execution: verified (%s package)\n"
    (Report.human_bytes (Package.total_bytes pkg_inc));

  (* --- (ii) re-execution without the DB --------------------------- *)
  let audit_exc = audit_with Audit.Excluded in
  let pkg_exc = Package.build audit_exc in
  (* Bob's machine: no DB server at all. The package carries none. *)
  assert (pkg_exc.Package.db_subset = []);
  assert (pkg_exc.Package.recording <> []);
  let replay = Replay.execute pkg_exc in
  assert (Replay.verify ~audit:audit_exc replay = []);
  Printf.printf "(ii)  DB-free re-execution: verified (%s package)\n"
    (Report.human_bytes (Package.total_bytes pkg_exc));

  (* --- (iii) Bob's own inputs ------------------------------------- *)
  (* Bob lowers the threshold: a *different* execution over the packaged
     subset. This works on the server-included package because it contains
     a functioning DB; it would (correctly) raise Replay_divergence on the
     server-excluded one. *)
  let bobs_program env =
    Minios.Program.write_file env config_path "2\n";
    app env
  in
  let prepared = Replay.prepare pkg_inc in
  let bob = Replay.run ~program:bobs_program prepared in
  let bobs_output = List.assoc out_path bob.Replay.out_files in
  let alices_output = List.assoc out_path audit_inc.Audit.out_files in
  assert (not (String.equal bobs_output alices_output));
  Printf.printf "(iii) modified input: %d suppliers reported (Alice had %d)\n"
    (List.length (String.split_on_char '\n' bobs_output))
    (List.length (String.split_on_char '\n' alices_output));

  (* and the same modification against the server-excluded package is
     refused, as §VII-D prescribes *)
  (try
     ignore (Replay.execute ~program:bobs_program pkg_exc);
     print_endline "BUG: server-excluded replay accepted a modified query";
     exit 1
   with Dbclient.Interceptor.Replay_divergence _ ->
     print_endline
       "      (server-excluded package correctly refuses the modified run)");
  print_endline "sharing_with_bob done."
