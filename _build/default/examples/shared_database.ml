(* A database shared among multiple users (the paper's challenge 3 and the
   "Other experiments" box of Figure 1).

   Alice and a colleague both work against the same observations DB. The
   colleague's ingestion runs *concurrently with* (here: interleaved
   around) Alice's analysis. When Alice packages her run:

   - the colleague's tuples that her query read ARE in the package;
   - the colleague's tuples her query never touched are NOT;
   - tuples the colleague inserted *after* Alice's query are NOT, even
     though they are in the DB when packaging happens — versioning pins
     the snapshot Alice actually saw, so her replay reproduces her
     results even though the shared DB has long moved on.

   Run with:  dune exec examples/shared_database.exe *)

open Ldv_core

let () =
  let db = Minidb.Database.create ~name:"observatory" () in
  ignore
    (Minidb.Database.exec_script db
       "CREATE TABLE observations (id INT, star TEXT, mag INT);\n\
        INSERT INTO observations VALUES (1, 'vega', 21), (2, 'deneb', 14), \
        (3, 'altair', 23)");
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Minios.Vfs.write_opaque (Minios.Kernel.vfs kernel) ~path:"/bin/alice" 5000;
  Minios.Vfs.write_opaque (Minios.Kernel.vfs kernel) ~path:"/bin/colleague" 5000;

  (* Alice's analysis: bright stars only. Interleaved with her run, the
     colleague keeps ingesting new observations into the same DB. *)
  let alice env =
    let conn = Dbclient.Client.connect env ~db:"observatory" in
    let rows =
      Dbclient.Client.query conn
        "SELECT star, mag FROM observations WHERE mag > 20"
    in
    Minios.Program.write_file env "/home/alice/bright.txt"
      (String.concat "\n"
         (List.map
            (fun r ->
              Printf.sprintf "%s (%s)"
                (Minidb.Value.to_raw_string r.(0))
                (Minidb.Value.to_raw_string r.(1)))
            rows));
    (* the colleague's ingestion lands *after* Alice's query but before
       her run (and thus the packaging) finishes *)
    ignore
      (Minios.Program.spawn env ~name:"colleague" ~binary:"/bin/colleague"
         (fun env' ->
           let conn' = Dbclient.Client.connect env' ~db:"observatory" in
           ignore
             (Dbclient.Client.exec conn'
                "INSERT INTO observations VALUES (4, 'sirius', 30)");
           Dbclient.Client.close conn'));
    Dbclient.Client.close conn
  in
  Minios.Program.register ~name:"alice-bright" alice;
  let audit =
    Audit.run ~packaging:Audit.Included kernel server ~app_name:"alice-bright"
      ~app_binary:"/bin/alice" alice
  in

  let relevant = Slice.relevant audit in
  Printf.printf "packaged tuple versions:\n";
  Minidb.Tid.Set.iter
    (fun tid -> Printf.printf "  %s\n" (Minidb.Tid.to_string tid))
    relevant;
  (* vega (21) and altair (23) were read; deneb (14) was not; sirius (30)
     was inserted after the query — bright, but invisible to Alice's run *)
  assert (Minidb.Tid.Set.cardinal relevant = 2);

  (* sirius is in the live DB right now, yet correctly absent *)
  let live =
    Minidb.Database.query db "SELECT count(*) FROM observations WHERE mag > 20"
  in
  (match Minidb.Executor.result_values live with
  | [ [| Minidb.Value.Int 3 |] ] -> ()
  | _ -> failwith "expected three bright stars live");

  (* Bob replays on a fresh machine: he gets Alice's two bright stars,
     not today's three *)
  let pkg = Package.build audit in
  let replay = Replay.execute pkg in
  (match Replay.verify ~audit replay with
  | [] -> print_endline "replay reproduced Alice's snapshot exactly"
  | ps -> List.iter print_endline ps; exit 1);
  print_endline (List.assoc "/home/alice/bright.txt" replay.Replay.out_files);
  print_endline "shared_database done."
