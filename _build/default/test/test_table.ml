open Minidb

let schema =
  Schema.of_list [ Schema.column "k" Value.Tint; Schema.column "s" Value.Tstr ]

let mk () = Table.create ~name:"T" ~schema

let test_insert_assigns_rids () =
  let t = mk () in
  let a = Table.insert t ~clock:1 [| Value.Int 1; Value.Str "a" |] in
  let b = Table.insert t ~clock:2 [| Value.Int 2; Value.Str "b" |] in
  Alcotest.(check int) "rids sequential" 1 a.Table.tid.Tid.rid;
  Alcotest.(check int) "second rid" 2 b.Table.tid.Tid.rid;
  Alcotest.(check string) "name lowercased" "t" a.Table.tid.Tid.table;
  Alcotest.(check int) "row count" 2 (Table.row_count t);
  Alcotest.(check int) "scan in insertion order" 1
    (List.hd (Table.scan t)).Table.tid.Tid.rid

let test_update_creates_version () =
  let t = mk () in
  let a = Table.insert t ~clock:1 [| Value.Int 1; Value.Str "a" |] in
  let old_tv, new_tv = Table.update t ~clock:5 ~rid:1 [| Value.Int 1; Value.Str "a2" |] in
  Alcotest.(check bool) "old is the insert" true (Tid.equal old_tv.Table.tid a.Table.tid);
  Alcotest.(check int) "new version carries clock" 5 new_tv.Table.tid.Tid.version;
  Alcotest.(check int) "rid stable" 1 new_tv.Table.tid.Tid.rid;
  Alcotest.(check (option int)) "old retired" (Some 5) old_tv.Table.retired_at;
  Alcotest.(check int) "still one live row" 1 (Table.row_count t);
  Alcotest.(check int) "two versions in history" 2 (Table.version_count t);
  (* both versions findable *)
  Alcotest.(check bool) "old version retrievable" true
    (Table.find_version t a.Table.tid <> None)

let test_delete () =
  let t = mk () in
  ignore (Table.insert t ~clock:1 [| Value.Int 1; Value.Str "a" |]);
  let victim = Table.delete t ~clock:3 ~rid:1 in
  Alcotest.(check (option int)) "retired at delete time" (Some 3)
    victim.Table.retired_at;
  Alcotest.(check int) "no live rows" 0 (Table.row_count t);
  Alcotest.(check int) "history keeps it" 1 (Table.version_count t)

let test_update_dead_rid_fails () =
  let t = mk () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Table.update t ~clock:1 ~rid:99 [| Value.Int 1; Value.Str "x" |]);
       false
     with Errors.Db_error (Errors.Constraint_violation _) -> true)

let test_restore_version () =
  let t = mk () in
  let tv = Table.restore_version t ~rid:7 ~version:3 [| Value.Int 9; Value.Str "z" |] in
  Alcotest.(check int) "rid preserved" 7 tv.Table.tid.Tid.rid;
  Alcotest.(check int) "version preserved" 3 tv.Table.tid.Tid.version;
  (* next insert does not collide *)
  let next = Table.insert t ~clock:9 [| Value.Int 1; Value.Str "n" |] in
  Alcotest.(check int) "next_rid advanced" 8 next.Table.tid.Tid.rid;
  (* restoring a newer version of the same rid supersedes *)
  ignore (Table.restore_version t ~rid:7 ~version:5 [| Value.Int 10; Value.Str "z2" |]);
  Alcotest.(check int) "still 2 live" 2 (Table.row_count t);
  (* restoring a stale version fails *)
  Alcotest.(check bool) "stale restore rejected" true
    (try
       ignore (Table.restore_version t ~rid:7 ~version:4 [| Value.Int 0; Value.Str "" |]);
       false
     with Errors.Db_error (Errors.Constraint_violation _) -> true)

let test_data_bytes_grows () =
  let t = mk () in
  let before = Table.data_bytes t in
  ignore (Table.insert t ~clock:1 [| Value.Int 1; Value.Str "hello" |]);
  Alcotest.(check bool) "bytes grow" true (Table.data_bytes t > before)

let test_schema_coercion_on_insert () =
  let t =
    Table.create ~name:"f"
      ~schema:(Schema.of_list [ Schema.column "x" Value.Tfloat ])
  in
  let tv = Table.insert t ~clock:1 [| Value.Int 2 |] in
  Alcotest.(check bool) "int widened" true
    (Value.equal tv.Table.values.(0) (Value.Float 2.0))

let suite =
  [ Alcotest.test_case "insert assigns rids" `Quick test_insert_assigns_rids;
    Alcotest.test_case "update creates version" `Quick test_update_creates_version;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "update dead rid" `Quick test_update_dead_rid_fails;
    Alcotest.test_case "restore version" `Quick test_restore_version;
    Alcotest.test_case "data bytes" `Quick test_data_bytes_grows;
    Alcotest.test_case "insert coercion" `Quick test_schema_coercion_on_insert ]
