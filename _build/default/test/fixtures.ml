(* Shared test fixtures. *)

open Minidb

(* The paper's Figure 5 example: an annotated sales table where
   SELECT sum(price) FROM sales WHERE price > 10 has lineage {t2, t3}. *)
let sales_db () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE sales (id INT, price INT)");
  ignore (Database.exec db "INSERT INTO sales VALUES (1, 5), (2, 11), (3, 14)");
  db

(* A two-table join fixture. *)
let orders_db () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE orders (okey INT, cust TEXT)");
  ignore (Database.exec db "CREATE TABLE items (okey INT, qty INT, price FLOAT)");
  ignore
    (Database.exec db
       "INSERT INTO orders VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')");
  ignore
    (Database.exec db
       "INSERT INTO items VALUES (1, 2, 10.0), (1, 3, 5.0), (2, 1, 7.5), (4, \
        9, 1.0)");
  db

let rows_of (r : Executor.result) : Value.t array list =
  Executor.result_values r

let int_cell = function
  | Value.Int i -> i
  | v -> Alcotest.failf "expected int cell, got %s" (Value.to_string v)

let str_cell = function
  | Value.Str s -> s
  | v -> Alcotest.failf "expected string cell, got %s" (Value.to_string v)

let float_cell = function
  | Value.Float f -> f
  | Value.Int i -> float_of_int i
  | v -> Alcotest.failf "expected float cell, got %s" (Value.to_string v)

(* Render rows for order-insensitive comparison. *)
let row_strings (rows : Value.t array list) : string list =
  List.map
    (fun row ->
      String.concat "|" (Array.to_list (Array.map Value.to_raw_string row)))
    rows
  |> List.sort String.compare

let check_rows msg expected (r : Executor.result) =
  Alcotest.(check (list string)) msg
    (List.sort String.compare expected)
    (row_strings (rows_of r))

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Restrict a database to a tuple-version subset: a fresh DB holding, per
   table, only the live versions whose tid is in [tids]. Used by the
   lineage-sufficiency property. *)
let restrict_db (db : Database.t) (tids : Tid.Set.t) : Database.t =
  let out = Database.create ~name:(Database.name db ^ "-restricted") () in
  Catalog.iter (Database.catalog db) (fun table ->
      let name = Table.name table in
      let copy =
        Catalog.create_table (Database.catalog out) ~name
          ~schema:(Table.schema table)
      in
      List.iter
        (fun (tv : Table.tuple_version) ->
          if Tid.Set.mem tv.Table.tid tids then
            ignore
              (Table.restore_version copy ~rid:tv.Table.tid.Tid.rid
                 ~version:tv.Table.tid.Tid.version tv.Table.values))
        (Table.scan table));
  out
