open Ldv_core
module I = Dbclient.Interceptor

let test_included_trace_structure () =
  let audit = Lazy.force Ldv_fixtures.included in
  let stats = Prov.Query.stats audit.Audit.trace in
  (* 10 inserts + 3 selects + 4 updates *)
  Alcotest.(check int) "statement nodes" 17 stats.Prov.Query.statements;
  Alcotest.(check bool) "app and server processes" true
    (stats.Prov.Query.processes >= 2);
  Alcotest.(check bool) "tuples present" true (stats.Prov.Query.tuples > 0);
  Alcotest.(check bool) "lineage dependencies registered" true
    (stats.Prov.Query.direct_dependencies > 0)

let test_included_cross_model_edges () =
  let audit = Lazy.force Ldv_fixtures.included in
  let trace = audit.Audit.trace in
  let edges = Prov.Trace.edges trace in
  let count label =
    List.length
      (List.filter (fun (e : Prov.Trace.edge) -> e.Prov.Trace.elabel = label) edges)
  in
  Alcotest.(check int) "one run edge per statement" 17 (count "run");
  Alcotest.(check bool) "query results read by the process" true
    (count "readFromDb" > 0);
  Alcotest.(check bool) "hasRead edges present" true (count "hasRead" > 0);
  Alcotest.(check bool) "hasReturned edges present" true (count "hasReturned" > 0)

let test_statement_nodes_carry_sql () =
  let audit = Lazy.force Ldv_fixtures.included in
  let stmts = I.log audit.Audit.session in
  List.iter
    (fun (s : I.stmt_event) ->
      let node =
        Prov.Trace.node_exn audit.Audit.trace (Prov.Lineage_model.stmt_id s.I.qid)
      in
      Alcotest.(check (option string)) "sql attribute"
        (Some s.I.sql_norm)
        (List.assoc_opt "sql" node.Prov.Trace.attrs))
    stmts

let test_output_files_captured () =
  let audit = Lazy.force Ldv_fixtures.included in
  Alcotest.(check bool) "results.csv captured as output" true
    (List.mem_assoc "/app/out/results.csv" audit.Audit.out_files);
  (* the server's checkpoint writes are not app outputs *)
  Alcotest.(check bool) "no server data files among outputs" true
    (List.for_all
       (fun (p, _) -> not (Fixtures.contains_substring ~needle:"/var/minidb" p))
       audit.Audit.out_files)

let test_query_fingerprints_cover_selects () =
  let audit = Lazy.force Ldv_fixtures.included in
  Alcotest.(check int) "three select fingerprints" 3
    (List.length audit.Audit.query_fingerprints);
  (* same query, same data: all three fingerprints identical *)
  match audit.Audit.query_fingerprints with
  | (_, f1) :: rest ->
    List.iter (fun (_, f) -> Alcotest.(check string) "stable" f1 f) rest
  | [] -> Alcotest.fail "no fingerprints"

let test_ptu_has_no_db_provenance () =
  let audit = Lazy.force Ldv_fixtures.ptu in
  let stats = Prov.Query.stats audit.Audit.trace in
  Alcotest.(check int) "no statements in PTU trace" 0 stats.Prov.Query.statements;
  Alcotest.(check int) "no tuples in PTU trace" 0 stats.Prov.Query.tuples;
  Alcotest.(check bool) "files traced" true (stats.Prov.Query.files > 0)

let test_excluded_has_statements_but_no_tuples () =
  let audit = Lazy.force Ldv_fixtures.excluded in
  let stats = Prov.Query.stats audit.Audit.trace in
  Alcotest.(check int) "statements present" 17 stats.Prov.Query.statements;
  Alcotest.(check int) "no tuple-level provenance" 0 stats.Prov.Query.tuples;
  (* but responses were recorded *)
  Alcotest.(check int) "all statements recorded" 17
    (List.length (I.recorded audit.Audit.session))

let test_app_pids_exclude_server () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pids = Audit.app_pids audit in
  (match audit.Audit.server_pid with
  | Some sp ->
    Alcotest.(check bool) "server pid filtered" false (List.mem sp pids)
  | None -> Alcotest.fail "included audit must have a server pid");
  Alcotest.(check bool) "root pid present" true
    (List.mem audit.Audit.root_pid pids)

let test_output_depends_on_db_tuples () =
  (* the heart of the combined model: the app's output file depends on DB
     tuple versions through query results *)
  let audit = Lazy.force Ldv_fixtures.included in
  let deps =
    Prov.Dependency.dependencies_of audit.Audit.trace "file:/app/out/results.csv"
  in
  let tuple_deps =
    List.filter
      (fun d -> String.length d > 6 && String.sub d 0 6 = "tuple:")
      deps
  in
  Alcotest.(check bool) "output depends on stored tuples" true
    (List.length tuple_deps > 0);
  (* and on the app's config file *)
  Alcotest.(check bool) "output depends on the config input" true
    (List.mem "file:/app/etc/app.conf" deps)

let suite =
  [ Alcotest.test_case "included trace structure" `Quick test_included_trace_structure;
    Alcotest.test_case "cross-model edges" `Quick test_included_cross_model_edges;
    Alcotest.test_case "statement sql attributes" `Quick test_statement_nodes_carry_sql;
    Alcotest.test_case "output files" `Quick test_output_files_captured;
    Alcotest.test_case "query fingerprints" `Quick test_query_fingerprints_cover_selects;
    Alcotest.test_case "ptu: no DB provenance" `Quick test_ptu_has_no_db_provenance;
    Alcotest.test_case "excluded: statements only" `Quick
      test_excluded_has_statements_but_no_tuples;
    Alcotest.test_case "app pids" `Quick test_app_pids_exclude_server;
    Alcotest.test_case "output depends on tuples" `Quick test_output_depends_on_db_tuples ]
