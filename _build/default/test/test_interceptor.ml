open Minidb
open Dbclient
module I = Interceptor

let mk_env ?(mode = I.Passthrough) () =
  let kernel = Minios.Kernel.create () in
  let db = Fixtures.sales_db () in
  let server = Server.install kernel db in
  let session = I.create ~mode ~kernel server in
  (kernel, server, session)

let test_passthrough () =
  let _, _, session = mk_env () in
  (match I.execute session ~pid:1 "SELECT id FROM sales WHERE price > 10" with
  | Protocol.Result_set { rows; _ } ->
    Alcotest.(check int) "rows returned" 2 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  Alcotest.(check int) "statement logged" 1 (List.length (I.log session));
  Alcotest.(check int) "nothing sliced" 0 (List.length (I.slice_tids session))

let test_audit_included_collects_lineage () =
  let _, _, session = mk_env ~mode:I.Audit_included () in
  ignore (I.execute session ~pid:1 "SELECT id FROM sales WHERE price > 10");
  let slice = I.slice_tids session in
  Alcotest.(check int) "two lineage tuples sliced" 2 (List.length slice);
  (* repeated query does not duplicate slice entries *)
  ignore (I.execute session ~pid:1 "SELECT id FROM sales WHERE price > 10");
  Alcotest.(check int) "dedup" 2 (List.length (I.slice_tids session));
  (* the log carries result tids with lineage *)
  match I.log session with
  | s :: _ ->
    Alcotest.(check int) "two result tuples" 2 (List.length s.I.results);
    List.iter
      (fun (rtid, lineage) ->
        Alcotest.(check bool) "result tid synthetic" true (I.is_result_tid rtid);
        Alcotest.(check int) "each result from one tuple" 1 (List.length lineage))
      s.I.results
  | [] -> Alcotest.fail "log empty"

let test_audit_included_dml () =
  let _, _, session = mk_env ~mode:I.Audit_included () in
  ignore (I.execute session ~pid:1 "UPDATE sales SET price = price + 1 WHERE id = 2");
  (match I.log session with
  | [ s ] ->
    Alcotest.(check int) "read pre-version" 1 (List.length s.I.reads);
    Alcotest.(check int) "wrote new version" 1 (List.length s.I.results)
  | _ -> Alcotest.fail "expected one event");
  (* pre-version is in the slice (needed to re-run the update) *)
  Alcotest.(check int) "pre-version sliced" 1 (List.length (I.slice_tids session))

let test_audit_excluded_records () =
  let _, _, session = mk_env ~mode:I.Audit_excluded () in
  ignore (I.execute session ~pid:1 "SELECT id FROM sales WHERE price > 10");
  ignore (I.execute session ~pid:1 "UPDATE sales SET price = 0 WHERE id = 1");
  let recorded = I.recorded session in
  Alcotest.(check int) "two recorded" 2 (List.length recorded);
  (match recorded with
  | [ q; u ] ->
    Alcotest.(check bool) "query kind" true (q.Recorder.rec_kind = Recorder.Rquery);
    Alcotest.(check int) "query rows recorded" 2 (List.length q.Recorder.rec_rows);
    Alcotest.(check bool) "dml kind" true (u.Recorder.rec_kind = Recorder.Rdml);
    Alcotest.(check int) "dml affected recorded" 1 u.Recorder.rec_affected
  | _ -> Alcotest.fail "expected two records");
  Alcotest.(check int) "no slicing in excluded mode" 0
    (List.length (I.slice_tids session))

let replay_session recording =
  let kernel = Minios.Kernel.create () in
  (* empty DB: replay must never touch it *)
  let server = Server.install kernel (Database.create ()) in
  I.create_replay ~kernel server recording

let record_two () =
  let _, _, session = mk_env ~mode:I.Audit_excluded () in
  ignore (I.execute session ~pid:1 "SELECT id FROM sales WHERE price > 10");
  ignore (I.execute session ~pid:1 "UPDATE sales SET price = 0 WHERE id = 1");
  I.recorded session

let test_replay_excluded_in_order () =
  let session = replay_session (record_two ()) in
  (match I.execute session ~pid:9 "SELECT id FROM sales WHERE price > 10" with
  | Protocol.Result_set { rows; _ } ->
    Alcotest.(check int) "recorded rows served" 2 (List.length rows)
  | _ -> Alcotest.fail "expected recorded rows");
  match I.execute session ~pid:9 "UPDATE sales SET price = 0 WHERE id = 1" with
  | Protocol.Command_ok { affected = 1 } -> ()
  | _ -> Alcotest.fail "expected recorded ack"

let test_replay_diverging_statement_fails () =
  let session = replay_session (record_two ()) in
  Alcotest.(check bool) "unexpected statement raises" true
    (try
       ignore (I.execute session ~pid:9 "SELECT id FROM sales WHERE price > 99");
       false
     with I.Replay_divergence _ -> true)

let test_replay_out_of_order_fails () =
  let session = replay_session (record_two ()) in
  Alcotest.(check bool) "running the update first diverges" true
    (try
       ignore (I.execute session ~pid:9 "UPDATE sales SET price = 0 WHERE id = 1");
       false
     with I.Replay_divergence _ -> true)

let test_replay_exhausted_fails () =
  let session = replay_session (record_two ()) in
  ignore (I.execute session ~pid:9 "SELECT id FROM sales WHERE price > 10");
  ignore (I.execute session ~pid:9 "UPDATE sales SET price = 0 WHERE id = 1");
  Alcotest.(check bool) "recording exhausted" true
    (try
       ignore (I.execute session ~pid:9 "SELECT id FROM sales WHERE price > 10");
       false
     with I.Replay_divergence _ -> true)

let test_replay_normalizes_sql () =
  (* formatting differences must not break matching *)
  let session = replay_session (record_two ()) in
  match
    I.execute session ~pid:9 "select  ID from SALES where PRICE>10"
  with
  | Protocol.Result_set _ -> ()
  | _ -> Alcotest.fail "normalized statement should match"

let test_session_binding () =
  let kernel, _, session = mk_env () in
  I.bind kernel session;
  Alcotest.(check bool) "found" true (I.find kernel == session);
  I.unbind kernel;
  Alcotest.(check bool) "unbound" true
    (try
       ignore (I.find kernel);
       false
     with Invalid_argument _ -> true)

let test_timestamps_monotone () =
  let _, _, session = mk_env ~mode:I.Audit_included () in
  ignore (I.execute session ~pid:1 "SELECT id FROM sales");
  ignore (I.execute session ~pid:1 "SELECT price FROM sales");
  match I.log session with
  | [ a; b ] ->
    Alcotest.(check bool) "start before end" true (a.I.t_start < a.I.t_end);
    Alcotest.(check bool) "statements ordered" true (a.I.t_end < b.I.t_start)
  | _ -> Alcotest.fail "expected two events"

let suite =
  [ Alcotest.test_case "passthrough" `Quick test_passthrough;
    Alcotest.test_case "audit included: lineage" `Quick test_audit_included_collects_lineage;
    Alcotest.test_case "audit included: dml" `Quick test_audit_included_dml;
    Alcotest.test_case "audit excluded: recording" `Quick test_audit_excluded_records;
    Alcotest.test_case "replay in order" `Quick test_replay_excluded_in_order;
    Alcotest.test_case "replay divergence" `Quick test_replay_diverging_statement_fails;
    Alcotest.test_case "replay out of order" `Quick test_replay_out_of_order_fails;
    Alcotest.test_case "replay exhausted" `Quick test_replay_exhausted_fails;
    Alcotest.test_case "replay normalizes sql" `Quick test_replay_normalizes_sql;
    Alcotest.test_case "session binding" `Quick test_session_binding;
    Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone ]
