open Minidb
open Dbclient

let sample_records () =
  [ { Recorder.rec_index = 0;
      rec_sql_norm = "SELECT a FROM t WHERE b = 'x\ny'";
      rec_kind = Recorder.Rquery;
      rec_schema = Some (Schema.of_list [ Schema.column "a" Value.Tint ]);
      rec_rows = [ [| Value.Int 1 |]; [| Value.Null |] ];
      rec_affected = 2 };
    { Recorder.rec_index = 1;
      rec_sql_norm = "UPDATE t SET a = 1";
      rec_kind = Recorder.Rdml;
      rec_schema = None;
      rec_rows = [];
      rec_affected = 7 };
    { Recorder.rec_index = 2;
      rec_sql_norm = "CREATE TABLE x (y INT)";
      rec_kind = Recorder.Rddl;
      rec_schema = None;
      rec_rows = [];
      rec_affected = 0 } ]

let test_roundtrip () =
  let records = sample_records () in
  let decoded = Recorder.decode (Recorder.encode records) in
  Alcotest.(check int) "count" 3 (List.length decoded);
  List.iter2
    (fun (a : Recorder.recorded) (b : Recorder.recorded) ->
      Alcotest.(check int) "index" a.Recorder.rec_index b.Recorder.rec_index;
      Alcotest.(check string) "sql" a.Recorder.rec_sql_norm b.Recorder.rec_sql_norm;
      Alcotest.(check bool) "kind" true (a.Recorder.rec_kind = b.Recorder.rec_kind);
      Alcotest.(check int) "affected" a.Recorder.rec_affected b.Recorder.rec_affected;
      Alcotest.(check int) "rows" (List.length a.Recorder.rec_rows)
        (List.length b.Recorder.rec_rows);
      List.iter2
        (fun r1 r2 ->
          Alcotest.(check bool) "row values" true (Array.for_all2 Value.equal r1 r2))
        a.Recorder.rec_rows b.Recorder.rec_rows)
    records decoded

let test_schema_roundtrip () =
  let s =
    Schema.of_list
      [ Schema.column "a" Value.Tint; Schema.column "b" Value.Tstr;
        Schema.column "c" Value.Tfloat; Schema.column "d" Value.Tbool ]
  in
  let s' = Recorder.decode_schema (Recorder.encode_schema s) in
  Alcotest.(check int) "arity" (Schema.arity s) (Schema.arity s');
  Array.iter2
    (fun (a : Schema.column) (b : Schema.column) ->
      Alcotest.(check string) "name" a.Schema.name b.Schema.name;
      Alcotest.(check bool) "type" true (a.Schema.ty = b.Schema.ty))
    s s'

let test_byte_size_positive () =
  Alcotest.(check bool) "encoding has size" true
    (Recorder.byte_size (sample_records ()) > 0);
  Alcotest.(check int) "empty recording empty" 0 (Recorder.byte_size [])

let prop_roundtrip_random_rows =
  let value_gen =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun s -> Value.Str s)
            (string_size ~gen:(oneofl [ 'a'; '\t'; '\n'; '\\'; ',' ]) (int_bound 6)) ])
  in
  let record_gen =
    QCheck.Gen.(
      map
        (fun rows ->
          { Recorder.rec_index = 0;
            rec_sql_norm = "SELECT x FROM t";
            rec_kind = Recorder.Rquery;
            rec_schema = None;
            rec_rows = List.map (fun l -> Array.of_list l) rows;
            rec_affected = List.length rows })
        (list_size (int_bound 5) (list_size (int_range 1 4) value_gen)))
  in
  QCheck.Test.make ~count:200 ~name:"recorder roundtrip (hostile characters)"
    (QCheck.make record_gen) (fun r ->
      match Recorder.decode (Recorder.encode [ r ]) with
      | [ r' ] ->
        List.length r.Recorder.rec_rows = List.length r'.Recorder.rec_rows
        && List.for_all2
             (fun a b -> Array.for_all2 Value.equal a b)
             r.Recorder.rec_rows r'.Recorder.rec_rows
      | _ -> false)

let test_protocol_response_bytes () =
  let resp =
    Protocol.Result_set
      { schema = Schema.of_list [ Schema.column "a" Value.Tint ];
        rows = [ [| Value.Int 1 |]; [| Value.Int 2 |] ] }
  in
  Alcotest.(check bool) "result set bigger than ack" true
    (Protocol.response_bytes resp
    > Protocol.response_bytes (Protocol.Command_ok { affected = 5 }))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "schema roundtrip" `Quick test_schema_roundtrip;
    Alcotest.test_case "byte size" `Quick test_byte_size_positive;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_rows;
    Alcotest.test_case "protocol response bytes" `Quick test_protocol_response_bytes ]
