open Minidb

let schema =
  Schema.of_list
    [ Schema.column "a" Value.Tint;
      Schema.column "b" Value.Tstr;
      Schema.column "c" Value.Tfloat ]

let test_roundtrip_basic () =
  let versions =
    [ (1, 10, [| Value.Int 1; Value.Str "hello"; Value.Float 2.5 |]);
      (2, 11, [| Value.Null; Value.Str ""; Value.Null |]);
      (3, 12, [| Value.Int (-7); Value.Str "a,b\"c'd"; Value.Float 0.0 |]) ]
  in
  let encoded = Csv.encode_versions schema versions in
  let decoded = Csv.decode_versions encoded in
  Alcotest.(check int) "row count" 3 (List.length decoded);
  List.iter2
    (fun (r1, v1, row1) (r2, v2, row2) ->
      Alcotest.(check int) "rid" r1 r2;
      Alcotest.(check int) "version" v1 v2;
      Alcotest.(check bool) "values" true
        (Array.for_all2 Value.equal row1 row2))
    versions decoded

let test_null_vs_empty_string () =
  let versions = [ (1, 1, [| Value.Null; Value.Str ""; Value.Null |]) ] in
  match Csv.decode_versions (Csv.encode_versions schema versions) with
  | [ (_, _, row) ] ->
    Alcotest.(check bool) "null stays null" true (Value.is_null row.(0));
    Alcotest.(check bool) "empty string stays string" true
      (Value.equal row.(1) (Value.Str ""))
  | _ -> Alcotest.fail "expected one row"

let test_newline_in_field () =
  (* newlines are not allowed to break framing: they are quoted *)
  let field = "line1\nline2" in
  let line = Csv.encode_line [ Csv.encode_value (Value.Str field) ] in
  Alcotest.(check bool) "quoted" true (String.contains line '"')

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
        map (fun s -> Value.Str s)
          (string_size ~gen:(oneofl [ 'a'; ','; '"'; '\''; 'z' ]) (int_bound 8));
        map (fun b -> Value.Bool b) bool ])

let prop_value_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode value roundtrip"
    (QCheck.make ~print:Value.to_string value_gen) (fun v ->
      Value.equal v (Csv.decode_value (Csv.encode_value v)))

let prop_line_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode/split line roundtrip"
    (QCheck.make
       ~print:(fun l -> String.concat ";" l)
       QCheck.Gen.(
         list_size (int_range 1 5)
           (string_size ~gen:(oneofl [ 'a'; ','; '"'; 'x' ]) (int_bound 6))))
    (fun fields -> Csv.split_line (Csv.encode_line fields) = fields)

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip_basic;
    Alcotest.test_case "null vs empty string" `Quick test_null_vs_empty_string;
    Alcotest.test_case "newline quoting" `Quick test_newline_in_field;
    QCheck_alcotest.to_alcotest prop_value_roundtrip;
    QCheck_alcotest.to_alcotest prop_line_roundtrip ]
