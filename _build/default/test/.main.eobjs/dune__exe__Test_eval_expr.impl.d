test/test_eval_expr.ml: Alcotest Errors Eval_expr Fmt Minidb Printf QCheck QCheck_alcotest Schema Sql_ast Sql_parser String Value
