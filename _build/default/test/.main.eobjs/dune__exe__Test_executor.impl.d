test/test_executor.ml: Alcotest Annotation Array Database Errors Executor Fixtures List Minidb Planner Printf QCheck QCheck_alcotest Schema Sql_ast Sql_parser String Tid Tpch Value
