test/main.mli:
