test/test_annotation.ml: Alcotest Annotation Bool_semiring Fmt Lineage_semiring List Minidb Nat_semiring QCheck QCheck_alcotest String Tid Tropical_semiring
