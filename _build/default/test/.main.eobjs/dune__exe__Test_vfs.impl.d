test/test_vfs.ml: Alcotest Minios Vfs
