test/fixtures.ml: Alcotest Array Catalog Database Executor List Minidb String Table Tid Value
