test/test_dependency_exact.ml: Alcotest Array Bb_model Dependency Interval List Model Printf Prov QCheck QCheck_alcotest String Tpch Trace
