test/test_server.ml: Alcotest Catalog Database Dbclient Fixtures List Minidb Minios Protocol Server Table Tid Value
