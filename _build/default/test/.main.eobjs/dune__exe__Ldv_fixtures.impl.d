test/ldv_fixtures.ml: Dbclient Ldv_core Minios Printf Tpch
