test/test_recorder.ml: Alcotest Array Dbclient List Minidb Protocol QCheck QCheck_alcotest Recorder Schema Value
