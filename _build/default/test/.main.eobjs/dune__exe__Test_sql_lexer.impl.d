test/test_sql_lexer.ml: Alcotest Errors Fmt List Minidb Sql_lexer
