test/test_prov_export.ml: Alcotest Bb_model Combined Dot Fixtures Interval Lineage_model List Minidb Prov Prov_export Trace
