test/test_slice.ml: Alcotest Audit Catalog Csv Database Dbclient Executor Fixtures Lazy Ldv_core Ldv_fixtures List Minidb Printf Slice Sql_ast Sql_parser Table Tid
