test/test_database.ml: Alcotest Array Catalog Database Errors Executor Fixtures List Minidb Schema Tid Value
