test/test_prov_query.ml: Alcotest Bb_model Combined Interval List Prov Query
