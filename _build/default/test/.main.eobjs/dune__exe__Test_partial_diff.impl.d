test/test_partial_diff.ml: Alcotest Array Audit Dbclient Fixtures Format Lazy Ldv_core Ldv_fixtures List Minidb Minios Package Partial Printf Prov Replay String
