test/test_perm.ml: Alcotest Array Database Executor Fixtures Lazy List Minidb Perm Sql_parser Tid Value
