test/test_sql_parser.ml: Alcotest Errors List Minidb Pretty Sql_ast Sql_parser Value
