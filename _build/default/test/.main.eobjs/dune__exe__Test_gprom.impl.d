test/test_gprom.ml: Alcotest Database Errors Executor Fixtures Gprom List Minidb Schema Tid
