test/test_sql_features.ml: Alcotest Annotation Array Catalog Database Errors Executor Fixtures List Minidb Planner Printf QCheck QCheck_alcotest Sql_ast Sql_parser String Table Tid Tpch Value
