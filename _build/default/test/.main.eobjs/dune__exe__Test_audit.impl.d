test/test_audit.ml: Alcotest Audit Dbclient Fixtures Lazy Ldv_core Ldv_fixtures List Prov String
