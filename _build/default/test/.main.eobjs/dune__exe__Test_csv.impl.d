test/test_csv.ml: Alcotest Array Csv List Minidb QCheck QCheck_alcotest Schema String Value
