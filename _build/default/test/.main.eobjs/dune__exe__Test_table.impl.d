test/test_table.ml: Alcotest Array Errors List Minidb Schema Table Tid Value
