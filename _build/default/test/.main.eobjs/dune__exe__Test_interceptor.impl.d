test/test_interceptor.ml: Alcotest Database Dbclient Fixtures Interceptor List Minidb Minios Protocol Recorder Server
