test/test_tpch.ml: Alcotest Database Dbclient Executor Float List Minidb Minios Printf Tpch Value
