test/test_schema.ml: Alcotest Array Errors Minidb Schema Value
