test/test_differential.ml: Array Catalog Database Eval_expr Executor List Minidb Option Printf QCheck QCheck_alcotest Schema Sql_ast Sql_parser String Table Tpch Value
