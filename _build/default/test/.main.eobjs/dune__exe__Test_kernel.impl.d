test/test_kernel.ml: Alcotest Kernel List Minios Program Syscall Vfs
