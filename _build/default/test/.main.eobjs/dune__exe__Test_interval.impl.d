test/test_interval.ml: Alcotest Fmt Interval Prov QCheck QCheck_alcotest
