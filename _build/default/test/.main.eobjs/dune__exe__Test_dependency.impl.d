test/test_dependency.ml: Alcotest Array Bb_model Combined Dependency Interval Lineage_model List Minidb Printf Prov QCheck QCheck_alcotest String Tpch Trace
