test/test_replay.ml: Alcotest Dbclient Lazy Ldv_core Ldv_fixtures List Minidb Package Ptu Replay Slice
