test/test_edge_cases.ml: Alcotest Annotation Array Database Dbclient Errors Executor Fixtures Ldv_core List Minidb Minios Printf Prov QCheck QCheck_alcotest Sql_ast Sql_parser Tid Value
