test/test_package.ml: Alcotest Audit Dbclient Fixtures Lazy Ldv_core Ldv_fixtures List Package Printf Prov Ptu
