test/test_e2e.ml: Alcotest Audit Ldv_core Ldv_fixtures List Package Ptu QCheck QCheck_alcotest Replay String Tpch
