test/test_value.ml: Alcotest Errors Fmt Minidb QCheck QCheck_alcotest Value
