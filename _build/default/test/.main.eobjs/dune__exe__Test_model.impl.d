test/test_model.ml: Alcotest Bb_model Combined Lineage_model List Model Prov
