test/test_trace.ml: Alcotest Combined Interval List Prov Trace
