test/test_tracer.ml: Alcotest Kernel List Minios Program Prov Syscall Tracer Vfs
