test/test_tpch_full.ml: Alcotest Annotation Array Database Dbclient Executor Fixtures Lazy Ldv_core List Minidb Minios Printf Schema Tid Tpch Value
