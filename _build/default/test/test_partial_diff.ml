(* Tests for partial re-execution (backward slicing + package slimming)
   and trace diffing. *)

open Ldv_core
module I = Dbclient.Interceptor

(* An app with two independent strands:
   - strand A: read /in/a, query table ta, write /out/a
   - strand B: read /in/b, query table tb, write /out/b
   Slicing to /out/a must drop everything strand-B. *)
let two_strand_audit () =
  let db = Minidb.Database.create () in
  ignore
    (Minidb.Database.exec_script db
       "CREATE TABLE ta (x INT);\nCREATE TABLE tb (y INT);\n\
        INSERT INTO ta VALUES (1), (2);\nINSERT INTO tb VALUES (10), (20)");
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  let vfs = Minios.Kernel.vfs kernel in
  Minios.Vfs.write_string vfs ~path:"/in/a" "2";
  Minios.Vfs.write_string vfs ~path:"/in/b" "20";
  Minios.Vfs.write_opaque vfs ~path:"/bin/two-strand" 1000;
  let program env =
    let conn = Dbclient.Client.connect env ~db:"main" in
    let ta = Minios.Program.read_file env "/in/a" in
    let rows_a =
      Dbclient.Client.query conn
        (Printf.sprintf "SELECT x FROM ta WHERE x >= %s" ta)
    in
    Minios.Program.write_file env "/out/a"
      (String.concat ","
         (List.map (fun r -> Minidb.Value.to_raw_string r.(0)) rows_a));
    let tb = Minios.Program.read_file env "/in/b" in
    let rows_b =
      Dbclient.Client.query conn
        (Printf.sprintf "SELECT y FROM tb WHERE y >= %s" tb)
    in
    Minios.Program.write_file env "/out/b"
      (String.concat ","
         (List.map (fun r -> Minidb.Value.to_raw_string r.(0)) rows_b));
    Dbclient.Client.close conn
  in
  Minios.Program.register ~name:"two-strand" program;
  Audit.run ~packaging:Audit.Included kernel server ~app_name:"two-strand"
    ~app_binary:"/bin/two-strand" program

let audit = lazy (two_strand_audit ())

let test_requirements_slice () =
  let audit = Lazy.force audit in
  let r = Partial.requirements audit.Audit.trace ~target:"file:/out/a" in
  Alcotest.(check bool) "strand A input required" true
    (List.mem "/in/a" r.Partial.req_files);
  Alcotest.(check bool) "strand B input not required" false
    (List.mem "/in/b" r.Partial.req_files);
  Alcotest.(check bool) "app binary required (loader read)" true
    (List.mem "/bin/two-strand" r.Partial.req_files);
  let tables =
    Minidb.Tid.Set.elements r.Partial.req_tuples
    |> List.map (fun (t : Minidb.Tid.t) -> t.Minidb.Tid.table)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "only ta tuples required" [ "ta" ] tables;
  Alcotest.(check int) "one statement required" 1
    (List.length r.Partial.req_statements)

let test_slim_package () =
  let audit = Lazy.force audit in
  let pkg = Package.build audit in
  let r = Partial.requirements audit.Audit.trace ~target:"file:/out/a" in
  let slim = Partial.slim pkg [ r ] in
  let paths =
    List.map (fun (e : Package.entry) -> e.Package.e_path) slim.Package.entries
  in
  Alcotest.(check bool) "slim keeps /in/a" true (List.mem "/in/a" paths);
  Alcotest.(check bool) "slim drops /in/b" false (List.mem "/in/b" paths);
  Alcotest.(check (list string)) "slim keeps only ta csv" [ "ta" ]
    (List.map fst slim.Package.db_subset);
  Alcotest.(check bool) "slim is smaller" true
    (Package.total_bytes slim < Package.total_bytes pkg);
  (* a partial program covering only strand A replays against the slim
     package and reproduces the original output *)
  let partial_program env =
    let conn = Dbclient.Client.connect env ~db:"main" in
    let ta = Minios.Program.read_file env "/in/a" in
    let rows_a =
      Dbclient.Client.query conn
        (Printf.sprintf "SELECT x FROM ta WHERE x >= %s" ta)
    in
    Minios.Program.write_file env "/out/a"
      (String.concat ","
         (List.map (fun r -> Minidb.Value.to_raw_string r.(0)) rows_a));
    Dbclient.Client.close conn
  in
  let result = Replay.execute ~program:partial_program slim in
  Alcotest.(check (option string)) "partial replay reproduces /out/a"
    (List.assoc_opt "/out/a" audit.Audit.out_files)
    (List.assoc_opt "/out/a" result.Replay.out_files)

let test_slim_rejects_other_kinds () =
  let exc = Ldv_fixtures.audit Audit.Excluded in
  let pkg = Package.build exc in
  Alcotest.(check bool) "server-excluded cannot be slimmed" true
    (try
       ignore (Partial.slim pkg []);
       false
     with Invalid_argument _ -> true)

(* ---------------- trace diff ---------------- *)

let test_diff_identical () =
  let audit = Lazy.force audit in
  Alcotest.(check (list string)) "trace equals itself" []
    (List.map
       (fun d -> Format.asprintf "%a" Prov.Diff.pp_difference d)
       (Prov.Diff.compare_traces audit.Audit.trace audit.Audit.trace))

let test_diff_detects_changes () =
  let t1 = Prov.Combined.create () in
  ignore (Prov.Bb_model.add_process t1 ~pid:1 ~name:"p");
  ignore (Prov.Bb_model.add_file t1 ~path:"/x");
  ignore
    (Prov.Bb_model.read_from t1 ~pid:1 ~path:"/x" ~time:(Prov.Interval.point 1));
  ignore
    (Prov.Lineage_model.add_statement t1 ~qid:0 ~kind:Prov.Lineage_model.Query
       ~sql:"SELECT 1");
  let t2 = Prov.Combined.create () in
  ignore (Prov.Bb_model.add_process t2 ~pid:1 ~name:"p");
  ignore (Prov.Bb_model.add_file t2 ~path:"/y");
  ignore
    (Prov.Bb_model.read_from t2 ~pid:1 ~path:"/y" ~time:(Prov.Interval.point 1));
  ignore
    (Prov.Lineage_model.add_statement t2 ~qid:0 ~kind:Prov.Lineage_model.Query
       ~sql:"SELECT 2");
  let diffs = Prov.Diff.compare_traces t1 t2 in
  Alcotest.(check bool) "statement difference found" true
    (List.exists (fun d -> Fixtures.contains_substring ~needle:"statement" d.Prov.Diff.what) diffs);
  Alcotest.(check bool) "file difference found" true
    (List.exists (fun d -> d.Prov.Diff.what = "files read") diffs)

let test_diff_validates_replay () =
  (* replaying a package and re-auditing the replay produces an equivalent
     trace: the PTU-style validation loop *)
  let audit1 = Lazy.force audit in
  let pkg = Package.build audit1 in
  let prepared = Replay.prepare pkg in
  (* re-audit the replayed execution by tracing it again *)
  let tracer = Minios.Tracer.create () in
  Minios.Tracer.attach tracer prepared.Replay.kernel;
  I.bind prepared.Replay.kernel prepared.Replay.session;
  ignore
    (Minios.Program.run prepared.Replay.kernel ~binary:"/bin/two-strand"
       ~name:"two-strand"
       (Minios.Program.lookup "two-strand"));
  I.unbind prepared.Replay.kernel;
  Minios.Tracer.detach prepared.Replay.kernel;
  let replay_trace = Audit.build_trace tracer (I.log prepared.Replay.session) in
  (* compare only the statement stream: the replay kernel lacks the
     server-side OS activity of the original *)
  Alcotest.(check (list string)) "same statement stream"
    (Prov.Diff.statements audit1.Audit.trace)
    (Prov.Diff.statements replay_trace)

let suite =
  [ Alcotest.test_case "requirements slice" `Quick test_requirements_slice;
    Alcotest.test_case "slim package" `Quick test_slim_package;
    Alcotest.test_case "slim rejects other kinds" `Quick test_slim_rejects_other_kinds;
    Alcotest.test_case "diff: identical" `Quick test_diff_identical;
    Alcotest.test_case "diff: detects changes" `Quick test_diff_detects_changes;
    Alcotest.test_case "diff validates replay" `Quick test_diff_validates_replay ]
