open Minidb

let small () = Tpch.Dbgen.setup ~sf:0.001 ~seed:3 ()

let test_row_counts_scale () =
  let _, c = small () in
  Alcotest.(check int) "regions fixed" 5 c.Tpch.Dbgen.n_region;
  Alcotest.(check int) "nations fixed" 25 c.Tpch.Dbgen.n_nation;
  Alcotest.(check int) "suppliers scaled" 10 c.Tpch.Dbgen.n_supplier;
  Alcotest.(check int) "customers scaled" 150 c.Tpch.Dbgen.n_customer;
  Alcotest.(check int) "orders scaled" 1500 c.Tpch.Dbgen.n_orders;
  Alcotest.(check bool) "lineitems about 4x orders" true
    (c.Tpch.Dbgen.n_lineitem > 3 * c.Tpch.Dbgen.n_orders
    && c.Tpch.Dbgen.n_lineitem < 5 * c.Tpch.Dbgen.n_orders)

let test_tables_populated () =
  let db, c = small () in
  List.iter
    (fun (table, expected) ->
      match Database.query db (Printf.sprintf "SELECT count(*) FROM %s" table) with
      | { Executor.rows = [ { Executor.values = [| Value.Int n |]; _ } ]; _ } ->
        Alcotest.(check int) (table ^ " count") expected n
      | _ -> Alcotest.fail "count query failed")
    [ ("region", 5); ("nation", 25); ("supplier", 10); ("customer", 150);
      ("orders", 1500); ("lineitem", c.Tpch.Dbgen.n_lineitem);
      ("part", 200); ("partsupp", 800) ]

let test_determinism () =
  let db1, _ = Tpch.Dbgen.setup ~sf:0.001 ~seed:3 () in
  let db2, _ = Tpch.Dbgen.setup ~sf:0.001 ~seed:3 () in
  let fp db = Executor.result_fingerprint (Database.query db "SELECT * FROM orders") in
  Alcotest.(check string) "same seed, same data" (fp db1) (fp db2);
  let db3, _ = Tpch.Dbgen.setup ~sf:0.001 ~seed:4 () in
  Alcotest.(check bool) "different seed, different data" true (fp db1 <> fp db3)

let test_key_ranges () =
  let db, c = small () in
  (match
     Database.query db "SELECT min(l_suppkey), max(l_suppkey) FROM lineitem"
   with
  | { Executor.rows = [ { Executor.values = [| Value.Int lo; Value.Int hi |]; _ } ]; _ } ->
    Alcotest.(check bool) "suppkey within supplier range" true
      (lo >= 1 && hi <= c.Tpch.Dbgen.n_supplier)
  | _ -> Alcotest.fail "range query failed");
  match Database.query db "SELECT min(o_custkey), max(o_custkey) FROM orders" with
  | { Executor.rows = [ { Executor.values = [| Value.Int lo; Value.Int hi |]; _ } ]; _ } ->
    Alcotest.(check bool) "custkey within customer range" true
      (lo >= 1 && hi <= c.Tpch.Dbgen.n_customer)
  | _ -> Alcotest.fail "range query failed"

let test_customer_name_format () =
  let db, _ = small () in
  match Database.query db "SELECT c_name FROM customer WHERE c_custkey = 7" with
  | { Executor.rows = [ { Executor.values = [| Value.Str name |]; _ } ]; _ } ->
    Alcotest.(check string) "9-digit padded name" "Customer#000000007" name
  | _ -> Alcotest.fail "name lookup failed"

let test_all_18_variants_parse_and_run () =
  let db, c = small () in
  let variants = Tpch.Queries.variants c in
  Alcotest.(check int) "18 variants" 18 (List.length variants);
  List.iter
    (fun (v : Tpch.Queries.variant) ->
      match Database.query db v.Tpch.Queries.sql with
      | r ->
        if v.Tpch.Queries.family = 3 then
          Alcotest.(check int) (v.Tpch.Queries.vid ^ " single row") 1
            (List.length r.Executor.rows))
    variants

let test_selectivities_ordered () =
  let db, c = small () in
  (* within each family, measured selectivity follows the target order *)
  let by_family f =
    List.filter (fun (v : Tpch.Queries.variant) -> v.Tpch.Queries.family = f)
      (Tpch.Queries.variants c)
  in
  List.iter
    (fun fam ->
      let sels =
        List.map (fun v -> Tpch.Queries.measured_selectivity db c v) (by_family fam)
      in
      let expected_order =
        List.map (fun (v : Tpch.Queries.variant) -> v.Tpch.Queries.target_selectivity)
          (by_family fam)
      in
      let increasing l = List.sort compare l = l in
      let decreasing l = List.sort (fun a b -> compare b a) l = l in
      if increasing expected_order then
        Alcotest.(check bool)
          (Printf.sprintf "family %d monotone increasing" fam)
          true (increasing sels)
      else if decreasing expected_order then
        Alcotest.(check bool)
          (Printf.sprintf "family %d monotone decreasing" fam)
          true (decreasing sels))
    [ 1; 2; 3; 4 ]

let test_q1_selectivity_accuracy () =
  let db, c = Tpch.Dbgen.setup ~sf:0.01 ~seed:3 () in
  List.iter
    (fun (v : Tpch.Queries.variant) ->
      if v.Tpch.Queries.family = 1 then begin
        let m = Tpch.Queries.measured_selectivity db c v in
        let t = v.Tpch.Queries.target_selectivity in
        Alcotest.(check bool)
          (Printf.sprintf "%s within 30%% of target (%f vs %f)"
             v.Tpch.Queries.vid m t)
          true
          (Float.abs (m -. t) /. t < 0.3)
      end)
    (Tpch.Queries.variants c)

let test_workload_statements_deterministic () =
  let _, c = small () in
  let run_collect () =
    let db, _ = Tpch.Dbgen.setup ~sf:0.001 ~seed:3 () in
    let kernel = Minios.Kernel.create () in
    let server = Dbclient.Server.install kernel db in
    Tpch.Workload.install_runtime kernel;
    let q = Tpch.Queries.find c "Q1-1" in
    let cfg =
      { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql ~stats:c)
        with Tpch.Workload.n_insert = 5; n_update = 3; n_select = 2 }
    in
    ignore (Tpch.Workload.install_app_files kernel cfg);
    let session = Dbclient.Interceptor.create ~kernel server in
    Dbclient.Interceptor.bind kernel session;
    ignore (Minios.Program.run kernel ~name:"app" (Tpch.Workload.app cfg));
    Dbclient.Interceptor.unbind kernel;
    List.map
      (fun (s : Dbclient.Interceptor.stmt_event) -> s.Dbclient.Interceptor.sql_norm)
      (Dbclient.Interceptor.log session)
  in
  let s1 = run_collect () and s2 = run_collect () in
  Alcotest.(check int) "statement count 5+2+3" 10 (List.length s1);
  Alcotest.(check (list string)) "identical statement streams" s1 s2

let test_workload_steps_fire_in_order () =
  let db, c = small () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find c "Q1-1" in
  let cfg =
    { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql ~stats:c)
      with Tpch.Workload.n_insert = 2; n_update = 1; n_select = 3 }
  in
  ignore (Tpch.Workload.install_app_files kernel cfg);
  let session = Dbclient.Interceptor.create ~kernel server in
  Dbclient.Interceptor.bind kernel session;
  let steps = ref [] in
  let hook step body =
    steps := Tpch.Workload.step_name step :: !steps;
    body ()
  in
  ignore (Minios.Program.run kernel ~name:"app" (Tpch.Workload.app ~step_hook:hook cfg));
  Dbclient.Interceptor.unbind kernel;
  Alcotest.(check (list string)) "step order"
    [ "Inserts"; "First Select"; "Other Selects"; "Updates" ]
    (List.rev !steps);
  (* the app wrote its results file *)
  Alcotest.(check bool) "output file exists" true
    (Minios.Vfs.exists (Minios.Kernel.vfs kernel) cfg.Tpch.Workload.out_path)

let test_prng_stability () =
  let r = Tpch.Prng.create ~seed:42 in
  let a = Tpch.Prng.int r 1000 and b = Tpch.Prng.int r 1000 in
  let r2 = Tpch.Prng.create ~seed:42 in
  Alcotest.(check int) "same first draw" a (Tpch.Prng.int r2 1000);
  Alcotest.(check int) "same second draw" b (Tpch.Prng.int r2 1000);
  (* ranges respected *)
  for _ = 1 to 100 do
    let v = Tpch.Prng.in_range r ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 9)
  done

let suite =
  [ Alcotest.test_case "row counts" `Quick test_row_counts_scale;
    Alcotest.test_case "tables populated" `Quick test_tables_populated;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "key ranges" `Quick test_key_ranges;
    Alcotest.test_case "customer name format" `Quick test_customer_name_format;
    Alcotest.test_case "18 variants run" `Quick test_all_18_variants_parse_and_run;
    Alcotest.test_case "selectivity ordering" `Quick test_selectivities_ordered;
    Alcotest.test_case "Q1 selectivity accuracy" `Quick test_q1_selectivity_accuracy;
    Alcotest.test_case "workload determinism" `Quick test_workload_statements_deterministic;
    Alcotest.test_case "workload steps" `Quick test_workload_steps_fire_in_order;
    Alcotest.test_case "prng stability" `Quick test_prng_stability ]
