open Minidb

let tid table rid = Tid.make ~table ~rid ~version:1

let a = tid "t" 1
let b = tid "t" 2
let c = tid "u" 1

let poly = Alcotest.testable (Fmt.of_to_string Annotation.to_string) Annotation.equal

let test_normal_form () =
  let open Annotation in
  Alcotest.check poly "x + x has coefficient 2" (mul (of_int 2) (var a))
    (add (var a) (var a));
  Alcotest.check poly "x*y = y*x" (mul (var a) (var b)) (mul (var b) (var a));
  Alcotest.check poly "p + 0 = p" (var a) (add (var a) zero);
  Alcotest.check poly "p * 1 = p" (var a) (mul (var a) one);
  Alcotest.check poly "p * 0 = 0" zero (mul (var a) zero);
  Alcotest.check poly "x - coeff cancels" zero
    (add (var a) (mul (of_int (-1)) (var a)))

let test_sum_matches_folded_add () =
  let open Annotation in
  let ps = [ var a; mul (var a) (var b); var c; var a; one ] in
  Alcotest.check poly "sum = fold add"
    (List.fold_left add zero ps)
    (sum ps)

let test_lineage () =
  let open Annotation in
  let p = add (mul (var a) (var b)) (var c) in
  Alcotest.(check int) "lineage cardinality" 3 (Tid.Set.cardinal (lineage p));
  Alcotest.(check bool) "lineage membership" true (Tid.Set.mem c (lineage p))

let test_why () =
  let open Annotation in
  let p = add (mul (var a) (var b)) (var c) in
  Alcotest.(check int) "two witnesses" 2 (List.length (why p));
  let p2 = add (var a) (mul (var a) (var a)) in
  (* {a} appears once deduplicated *)
  Alcotest.(check int) "witnesses dedup" 1 (List.length (why p2))

let test_derivation_count () =
  let open Annotation in
  let p = add (add (var a) (var a)) (mul (var b) (var c)) in
  Alcotest.(check int) "three derivations" 3 (derivation_count p)

let test_eval_homomorphism () =
  let open Annotation in
  (* evaluating under Nat with all-ones assignment = derivation count *)
  let p = add (mul (var a) (var b)) (mul (of_int 2) (var c)) in
  let n = eval (module Nat_semiring) (fun _ -> 1) p in
  Alcotest.(check int) "nat eval = derivation count" (derivation_count p) n;
  (* boolean eval: true iff some monomial is all-true *)
  let bl = eval (module Bool_semiring) (fun t -> Tid.equal t c) p in
  Alcotest.(check bool) "bool eval finds the c monomial" true bl;
  let bl2 = eval (module Bool_semiring) (fun t -> Tid.equal t a) p in
  Alcotest.(check bool) "a alone is not a witness" false bl2

let test_tropical () =
  let open Annotation in
  (* cheapest derivation: min over monomials of the sum of var costs *)
  let p = add (mul (var a) (var b)) (var c) in
  let cost t = if Tid.equal t c then Some 10 else Some 2 in
  Alcotest.(check (option int)) "min cost path" (Some 4)
    (eval (module Tropical_semiring) cost p)

let test_lineage_semiring_agrees () =
  let open Annotation in
  let p = add (mul (var a) (var b)) (var c) in
  let le = eval (module Lineage_semiring) (fun t -> Lineage_semiring.Set (Tid.Set.singleton t)) p in
  match le with
  | Lineage_semiring.Set s ->
    Alcotest.(check bool) "lineage semiring = syntactic lineage" true
      (Tid.Set.equal s (lineage p))
  | Lineage_semiring.Bottom -> Alcotest.fail "expected a set"

(* ------------------------------------------------------------------ *)
(* Property tests: the polynomials form a commutative semiring.        *)

let tid_gen =
  QCheck.Gen.(
    map2 (fun t r -> Tid.make ~table:(String.make 1 t) ~rid:r ~version:1)
      (char_range 'a' 'c') (int_range 1 3))

let poly_gen =
  QCheck.Gen.(
    let base =
      oneof
        [ return Annotation.zero;
          return Annotation.one;
          map Annotation.var tid_gen;
          (* coefficients stay in N so that evaluation into arbitrary
             semirings (which have no subtraction) is a homomorphism *)
          map Annotation.of_int (int_range 0 3) ]
    in
    let rec go n =
      if n = 0 then base
      else
        frequency
          [ (2, base);
            (2, map2 Annotation.add (go (n - 1)) (go (n - 1)));
            (2, map2 Annotation.mul (go (n - 1)) (go (n - 1))) ]
    in
    go 3)

let arb_poly = QCheck.make ~print:Annotation.to_string poly_gen
let arb2 = QCheck.pair arb_poly arb_poly
let arb3 = QCheck.triple arb_poly arb_poly arb_poly

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let semiring_laws =
  let open Annotation in
  [ prop "add commutative" 200 arb2 (fun (p, q) -> equal (add p q) (add q p));
    prop "add associative" 200 arb3 (fun (p, q, r) ->
        equal (add (add p q) r) (add p (add q r)));
    prop "mul commutative" 200 arb2 (fun (p, q) -> equal (mul p q) (mul q p));
    prop "mul associative" 100 arb3 (fun (p, q, r) ->
        equal (mul (mul p q) r) (mul p (mul q r)));
    prop "mul distributes over add" 100 arb3 (fun (p, q, r) ->
        equal (mul p (add q r)) (add (mul p q) (mul p r)));
    prop "zero annihilates" 200 arb_poly (fun p -> equal (mul p zero) zero);
    prop "one is identity" 200 arb_poly (fun p -> equal (mul p one) p);
    prop "lineage(p*q) = lineage p U lineage q (p,q nonzero)" 200 arb2
      (fun (p, q) ->
        if is_zero p || is_zero q then QCheck.assume_fail ()
        else
          Tid.Set.equal (lineage (mul p q))
            (Tid.Set.union (lineage p) (lineage q)));
    prop "eval is additive homomorphism (Nat)" 200 arb2 (fun (p, q) ->
        let f _ = 2 in
        eval (module Nat_semiring) f (add p q)
        = eval (module Nat_semiring) f p + eval (module Nat_semiring) f q);
    prop "eval is multiplicative homomorphism (Nat)" 100 arb2 (fun (p, q) ->
        let f _ = 2 in
        eval (module Nat_semiring) f (mul p q)
        = eval (module Nat_semiring) f p * eval (module Nat_semiring) f q);
    prop "sum = iterated add" 100 (QCheck.list_of_size (QCheck.Gen.int_bound 8) arb_poly)
      (fun ps -> equal (sum ps) (List.fold_left add zero ps)) ]

let suite =
  [ Alcotest.test_case "normal form" `Quick test_normal_form;
    Alcotest.test_case "sum matches folded add" `Quick test_sum_matches_folded_add;
    Alcotest.test_case "lineage" `Quick test_lineage;
    Alcotest.test_case "why provenance" `Quick test_why;
    Alcotest.test_case "derivation count" `Quick test_derivation_count;
    Alcotest.test_case "eval homomorphism" `Quick test_eval_homomorphism;
    Alcotest.test_case "tropical semiring" `Quick test_tropical;
    Alcotest.test_case "lineage semiring" `Quick test_lineage_semiring_agrees ]
  @ List.map QCheck_alcotest.to_alcotest semiring_laws
