open Prov

let trace_with_pipeline () =
  let t = Combined.create () in
  ignore (Bb_model.add_process t ~pid:1 ~name:"extract");
  ignore (Bb_model.add_process t ~pid:2 ~name:"load");
  ignore (Bb_model.add_file t ~path:"/raw");
  ignore (Bb_model.add_file t ~path:"/clean");
  ignore (Bb_model.add_file t ~path:"/report");
  ignore (Bb_model.read_from t ~pid:1 ~path:"/raw" ~time:(Interval.make 1 2));
  ignore (Bb_model.has_written t ~pid:1 ~path:"/clean" ~time:(Interval.make 3 4));
  ignore (Bb_model.read_from t ~pid:2 ~path:"/clean" ~time:(Interval.make 5 6));
  ignore (Bb_model.has_written t ~pid:2 ~path:"/report" ~time:(Interval.make 7 8));
  t

let test_stats () =
  let s = Query.stats (trace_with_pipeline ()) in
  Alcotest.(check int) "processes" 2 s.Query.processes;
  Alcotest.(check int) "files" 3 s.Query.files;
  Alcotest.(check int) "statements" 0 s.Query.statements;
  Alcotest.(check int) "edges" 4 s.Query.edges;
  match s.Query.time_span with
  | Some iv ->
    Alcotest.(check int) "span start" 1 (Interval.b iv);
    Alcotest.(check int) "span end" 8 (Interval.e iv)
  | None -> Alcotest.fail "expected a span"

let test_depends_on () =
  let t = trace_with_pipeline () in
  Alcotest.(check bool) "report depends on raw" true
    (Query.depends_on t ~target:"file:/report" ~source:"file:/raw");
  Alcotest.(check bool) "raw does not depend on report" false
    (Query.depends_on t ~target:"file:/raw" ~source:"file:/report")

let test_inputs_outputs () =
  let t = trace_with_pipeline () in
  Alcotest.(check (list string)) "inputs of report"
    [ "file:/clean"; "file:/raw" ]
    (Query.inputs_of t "file:/report");
  Alcotest.(check (list string)) "outputs of raw"
    [ "file:/clean"; "file:/report" ]
    (List.sort compare (Query.outputs_of t "file:/raw"))

let test_final_outputs () =
  let t = trace_with_pipeline () in
  Alcotest.(check (list string)) "only the report is final"
    [ "file:/report" ]
    (Query.final_outputs t)

let suite =
  [ Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "depends_on" `Quick test_depends_on;
    Alcotest.test_case "inputs/outputs" `Quick test_inputs_outputs;
    Alcotest.test_case "final outputs" `Quick test_final_outputs ]
