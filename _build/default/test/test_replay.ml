open Ldv_core
module I = Dbclient.Interceptor

let test_included_replay_verifies () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.build audit in
  let result = Replay.execute pkg in
  Alcotest.(check (list string)) "no divergences" [] (Replay.verify ~audit result)

let test_excluded_replay_verifies () =
  let audit = Lazy.force Ldv_fixtures.excluded in
  let pkg = Package.build audit in
  let result = Replay.execute pkg in
  Alcotest.(check (list string)) "no divergences" [] (Replay.verify ~audit result)

let test_ptu_replay_verifies () =
  let audit = Lazy.force Ldv_fixtures.ptu in
  let pkg = Ptu.build audit in
  let result = Replay.execute pkg in
  Alcotest.(check (list string)) "no divergences" [] (Replay.verify ~audit result)

let test_excluded_replay_touches_no_db () =
  let audit = Lazy.force Ldv_fixtures.excluded in
  let pkg = Package.build audit in
  let prepared = Replay.prepare pkg in
  let db = Dbclient.Server.db prepared.Replay.server in
  let result = Replay.run prepared in
  (* the replay DB has no tables at all: every answer came from the
     recording *)
  Alcotest.(check (list string)) "db untouched" []
    (Minidb.Catalog.table_names (Minidb.Database.catalog db));
  Alcotest.(check (list string)) "yet replay verified" []
    (Replay.verify ~audit result)

let test_included_restores_exact_tids () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.build audit in
  let prepared = Replay.prepare pkg in
  let db = Dbclient.Server.db prepared.Replay.server in
  (* every tuple version in the package exists in the restored DB with the
     same identity *)
  let relevant = Slice.relevant audit in
  Minidb.Tid.Set.iter
    (fun tid ->
      let table =
        Minidb.Catalog.find (Minidb.Database.catalog db) tid.Minidb.Tid.table
      in
      Alcotest.(check bool)
        ("restored: " ^ Minidb.Tid.to_string tid)
        true
        (Minidb.Table.find_version table tid <> None))
    relevant

let test_tampered_recording_detected () =
  let audit = Lazy.force Ldv_fixtures.excluded in
  let pkg = Package.build audit in
  (* corrupt one recorded query's rows *)
  let tampered =
    { pkg with
      Package.recording =
        List.map
          (fun (r : Dbclient.Recorder.recorded) ->
            if r.Dbclient.Recorder.rec_kind = Dbclient.Recorder.Rquery then
              { r with Dbclient.Recorder.rec_rows = [] }
            else r)
          pkg.Package.recording }
  in
  let result = Replay.execute tampered in
  Alcotest.(check bool) "verification catches tampering" true
    (Replay.verify ~audit result <> [])

let test_replay_divergence_on_changed_program () =
  (* Bob modifies the app to issue a different query: server-excluded
     replay must refuse (§VII-D: no changes to queries) *)
  let audit = Lazy.force Ldv_fixtures.excluded in
  let pkg = Package.build audit in
  let rogue_program env =
    let conn = Dbclient.Client.connect env ~db:"tpch" in
    ignore (Dbclient.Client.query conn "SELECT count(*) FROM lineitem")
  in
  Alcotest.(check bool) "divergence raised" true
    (try
       ignore (Replay.execute ~program:rogue_program pkg);
       false
     with I.Replay_divergence _ -> true)

let test_included_allows_changed_program () =
  (* server-included replay supports similar experiments over the packaged
     subset: a different query over packaged tables runs fine *)
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.build audit in
  let got = ref (-1) in
  let alt_program env =
    let conn = Dbclient.Client.connect env ~db:"tpch" in
    let rows = Dbclient.Client.query conn "SELECT count(*) FROM lineitem" in
    (match rows with
    | [ [| Minidb.Value.Int n |] ] -> got := n
    | _ -> ());
    Dbclient.Client.close conn
  in
  ignore (Replay.execute ~program:alt_program pkg);
  (* the packaged subset contains exactly the lineitems the original
     queries touched *)
  let relevant = Slice.relevant audit in
  let expected =
    Minidb.Tid.Set.cardinal
      (Minidb.Tid.Set.filter
         (fun t -> t.Minidb.Tid.table = "lineitem")
         relevant)
  in
  Alcotest.(check int) "count over packaged subset" expected !got

let test_replay_is_itself_repeatable () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.build audit in
  let r1 = Replay.execute pkg in
  let r2 = Replay.execute pkg in
  Alcotest.(check int) "same number of fingerprints"
    (List.length r1.Replay.query_fingerprints)
    (List.length r2.Replay.query_fingerprints);
  List.iter2
    (fun (_, a) (_, b) -> Alcotest.(check string) "fingerprints equal" a b)
    r1.Replay.query_fingerprints r2.Replay.query_fingerprints

let test_roundtripped_package_replays () =
  (* serialize the package to bytes, read it back, replay: still verifies *)
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.of_bytes (Package.to_bytes (Package.build audit)) in
  let result = Replay.execute pkg in
  Alcotest.(check (list string)) "no divergences after roundtrip" []
    (Replay.verify ~audit result)

let suite =
  [ Alcotest.test_case "included replay verifies" `Quick test_included_replay_verifies;
    Alcotest.test_case "excluded replay verifies" `Quick test_excluded_replay_verifies;
    Alcotest.test_case "ptu replay verifies" `Quick test_ptu_replay_verifies;
    Alcotest.test_case "excluded replay touches no DB" `Quick
      test_excluded_replay_touches_no_db;
    Alcotest.test_case "included restores exact tids" `Quick
      test_included_restores_exact_tids;
    Alcotest.test_case "tampering detected" `Quick test_tampered_recording_detected;
    Alcotest.test_case "excluded rejects changed program" `Quick
      test_replay_divergence_on_changed_program;
    Alcotest.test_case "included allows changed program" `Quick
      test_included_allows_changed_program;
    Alcotest.test_case "replay of replay" `Quick test_replay_is_itself_repeatable;
    Alcotest.test_case "roundtripped package replays" `Quick
      test_roundtripped_package_replays ]
