open Minidb

let mk_db () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE acct (id INT, bal INT);\n\
        INSERT INTO acct VALUES (1, 100), (2, 50), (3, 10)");
  db

module B = Gprom.Backend.Minidb_backend

let test_backend_query () =
  let db = mk_db () in
  let schema, rows = B.query db "SELECT bal FROM acct WHERE bal > 20" in
  Alcotest.(check int) "one column" 1 (Schema.arity schema);
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (_, lineage) ->
      Alcotest.(check int) "row lineage singleton" 1 (Tid.Set.cardinal lineage))
    rows

let test_backend_dml_and_command () =
  let db = mk_db () in
  let deps, reads = B.dml db "UPDATE acct SET bal = 0 WHERE id = 1" in
  Alcotest.(check int) "one written" 1 (List.length deps);
  Alcotest.(check int) "one read" 1 (List.length reads);
  B.command db "BEGIN";
  B.command db "ROLLBACK";
  Alcotest.(check bool) "command rejects queries" true
    (try
       B.command db "SELECT id FROM acct";
       false
     with Errors.Db_error (Errors.Unsupported _) -> true)

(* A transfer transaction: the classic reenactment example. *)
let transfer_statements =
  [ "UPDATE acct SET bal = bal - 30 WHERE id = 1";
    "UPDATE acct SET bal = bal + 30 WHERE id = 2" ]

let test_tx_provenance_simple () =
  let db = mk_db () in
  let tx = Gprom.Tx_reenact.run (module B) db transfer_statements in
  Alcotest.(check int) "two surviving versions" 2
    (List.length tx.Gprom.Tx_reenact.tx_written);
  Alcotest.(check int) "no intermediates" 0
    (List.length tx.Gprom.Tx_reenact.tx_intermediate);
  Alcotest.(check int) "two pre-state versions" 2
    (Tid.Set.cardinal tx.Gprom.Tx_reenact.tx_pre_state);
  (* effects committed *)
  Fixtures.check_rows "transfer applied" [ "1|70"; "2|80"; "3|10" ]
    (Database.query db "SELECT id, bal FROM acct")

let test_tx_provenance_composes_chains () =
  (* two updates touching the same row: the intermediate version must be
     composed away and the final version traced to the pre-tx original *)
  let db = mk_db () in
  let tx =
    Gprom.Tx_reenact.run (module B) db
      [ "UPDATE acct SET bal = bal + 1 WHERE id = 1";
        "UPDATE acct SET bal = bal * 2 WHERE id = 1" ]
  in
  Alcotest.(check int) "one surviving version" 1
    (List.length tx.Gprom.Tx_reenact.tx_written);
  Alcotest.(check int) "one intermediate composed away" 1
    (List.length tx.Gprom.Tx_reenact.tx_intermediate);
  (match tx.Gprom.Tx_reenact.tx_deps with
  | [ (final, roots) ] ->
    Alcotest.(check int) "final rid 1" 1 final.Tid.rid;
    Alcotest.(check int) "single pre-tx root" 1 (Tid.Set.cardinal roots);
    let root = Tid.Set.choose roots in
    Alcotest.(check int) "root is the original version" 1 root.Tid.rid
  | _ -> Alcotest.fail "expected exactly one dependency");
  Fixtures.check_rows "both updates applied" [ "202" ]
    (Database.query db "SELECT bal FROM acct WHERE id = 1")

let test_tx_insert_then_update () =
  (* a version created inside the tx has no pre-tx roots *)
  let db = mk_db () in
  let tx =
    Gprom.Tx_reenact.run (module B) db
      [ "INSERT INTO acct VALUES (4, 5)";
        "UPDATE acct SET bal = 6 WHERE id = 4" ]
  in
  (match tx.Gprom.Tx_reenact.tx_deps with
  | [ (final, roots) ] ->
    Alcotest.(check int) "survivor is the updated version" 4 final.Tid.rid;
    Alcotest.(check bool) "no pre-tx roots" true (Tid.Set.is_empty roots)
  | _ -> Alcotest.fail "expected one surviving version");
  Alcotest.(check int) "insert composed away" 1
    (List.length tx.Gprom.Tx_reenact.tx_intermediate)

let test_tx_delete_contributes_pre_state () =
  let db = mk_db () in
  let tx =
    Gprom.Tx_reenact.run (module B) db [ "DELETE FROM acct WHERE bal < 60" ]
  in
  Alcotest.(check int) "nothing written" 0
    (List.length tx.Gprom.Tx_reenact.tx_written);
  Alcotest.(check int) "victims in pre-state" 2
    (Tid.Set.cardinal tx.Gprom.Tx_reenact.tx_pre_state)

let test_tx_failure_rolls_back () =
  let db = mk_db () in
  let before =
    Executor.result_fingerprint (Database.query db "SELECT id, bal FROM acct")
  in
  (try
     ignore
       (Gprom.Tx_reenact.run (module B) db
          [ "UPDATE acct SET bal = 0 WHERE id = 1";
            "UPDATE nonexistent SET x = 1" ])
   with Errors.Db_error _ -> ());
  Alcotest.(check string) "state rolled back" before
    (Executor.result_fingerprint (Database.query db "SELECT id, bal FROM acct"));
  Alcotest.(check bool) "transaction closed" false (Database.in_transaction db)

let test_tx_statements_normalized () =
  let db = mk_db () in
  let tx =
    Gprom.Tx_reenact.run (module B) db
      [ "update ACCT set bal=0 where ID=1" ]
  in
  Alcotest.(check (list string)) "normalized statement recorded"
    [ "UPDATE acct SET bal = 0 WHERE id = 1" ]
    tx.Gprom.Tx_reenact.tx_statements

let suite =
  [ Alcotest.test_case "backend query" `Quick test_backend_query;
    Alcotest.test_case "backend dml/command" `Quick test_backend_dml_and_command;
    Alcotest.test_case "transfer provenance" `Quick test_tx_provenance_simple;
    Alcotest.test_case "chained updates compose" `Quick test_tx_provenance_composes_chains;
    Alcotest.test_case "insert-then-update" `Quick test_tx_insert_then_update;
    Alcotest.test_case "delete pre-state" `Quick test_tx_delete_contributes_pre_state;
    Alcotest.test_case "failure rolls back" `Quick test_tx_failure_rolls_back;
    Alcotest.test_case "statements normalized" `Quick test_tx_statements_normalized ]
