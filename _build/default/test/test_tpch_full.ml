(* The original TPC-H queries as a dialect validation suite. *)

open Minidb

let db_stats = lazy (Tpch.Dbgen.setup ~sf:0.002 ~seed:5 ())

let test_all_run () =
  let db, _ = Lazy.force db_stats in
  let results = Tpch.Queries_full.run_all db in
  Alcotest.(check int) "seven queries" 7 (List.length results);
  List.iter
    (fun (id, _) -> Alcotest.(check bool) (id ^ " ran") true true)
    results

let test_q1_groups () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q1").Tpch.Queries_full.qf_sql in
  (* at most 3 returnflags x 2 linestatuses *)
  Alcotest.(check bool) "group count plausible" true
    (List.length r.Executor.rows >= 1 && List.length r.Executor.rows <= 6);
  Alcotest.(check int) "nine output columns" 9 (Schema.arity r.Executor.schema);
  (* count_order column sums to the filtered lineitem count *)
  let total =
    List.fold_left
      (fun acc (row : Executor.arow) ->
        acc + Fixtures.int_cell row.Executor.values.(8))
      0 r.Executor.rows
  in
  match
    Database.query db
      "SELECT count(*) FROM lineitem WHERE l_shipdate <= '1998-09-02'"
  with
  | { Executor.rows = [ { Executor.values = [| Value.Int n |]; _ } ]; _ } ->
    Alcotest.(check int) "groups partition the input" n total
  | _ -> Alcotest.fail "count failed"

let test_q3_limit_and_order () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q3").Tpch.Queries_full.qf_sql in
  Alcotest.(check bool) "at most 10 rows" true (List.length r.Executor.rows <= 10);
  let revenues =
    List.map
      (fun (row : Executor.arow) -> Fixtures.float_cell row.Executor.values.(1))
      r.Executor.rows
  in
  Alcotest.(check (list (float 1e-6))) "revenue descending"
    (List.sort (fun a b -> compare b a) revenues)
    revenues

let test_q6_single_row () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q6").Tpch.Queries_full.qf_sql in
  Alcotest.(check int) "one row" 1 (List.length r.Executor.rows)

let test_q12_case_counts () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q12").Tpch.Queries_full.qf_sql in
  (* high + low per shipmode = total joined lines for that mode *)
  List.iter
    (fun (row : Executor.arow) ->
      let mode = Fixtures.str_cell row.Executor.values.(0) in
      let high = Fixtures.int_cell row.Executor.values.(1) in
      let low = Fixtures.int_cell row.Executor.values.(2) in
      match
        Database.query db
          (Printf.sprintf
             "SELECT count(*) FROM orders o, lineitem l WHERE o.o_orderkey \
              = l.l_orderkey AND l_shipmode = '%s' AND l_receiptdate >= \
              '1994-01-01' AND l_receiptdate < '1995-01-01'"
             mode)
      with
      | { Executor.rows = [ { Executor.values = [| Value.Int n |]; _ } ]; _ } ->
        Alcotest.(check int) (mode ^ " partitions") n (high + low)
      | _ -> Alcotest.fail "count failed")
    r.Executor.rows

let test_q14_ratio_bounds () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q14").Tpch.Queries_full.qf_sql in
  match r.Executor.rows with
  | [ row ] -> (
    match row.Executor.values.(0) with
    | Value.Float ratio ->
      Alcotest.(check bool)
        (Printf.sprintf "promo ratio in [0, 100]: %f" ratio)
        true
        (ratio >= 0.0 && ratio <= 100.0)
    | Value.Null -> () (* no lineitems in the window at tiny scale *)
    | v -> Alcotest.failf "unexpected %s" (Value.to_string v))
  | _ -> Alcotest.fail "expected one row"

let test_q5_lineage_spans_all_tables () =
  let db, _ = Lazy.force db_stats in
  let r = Database.query db (Tpch.Queries_full.find "TPCH-Q5").Tpch.Queries_full.qf_sql in
  (* when the six-way join produces rows, their lineage covers all six
     base tables — the provenance the server-included package would ship *)
  List.iter
    (fun (row : Executor.arow) ->
      let tables =
        Tid.Set.elements (Annotation.lineage row.Executor.ann)
        |> List.map (fun (t : Tid.t) -> t.Tid.table)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list string)) "six tables in lineage"
        [ "customer"; "lineitem"; "nation"; "orders"; "region"; "supplier" ]
        tables)
    r.Executor.rows

let test_audited_tpch_q3_replays () =
  (* an application running a real TPC-H query is packageable and
     repeatable end to end *)
  let db, _ = Tpch.Dbgen.setup ~sf:0.002 ~seed:5 () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Minios.Vfs.write_opaque (Minios.Kernel.vfs kernel) ~path:"/bin/q3app" 1000;
  let sql = (Tpch.Queries_full.find "TPCH-Q3").Tpch.Queries_full.qf_sql in
  let program env =
    let conn = Dbclient.Client.connect env ~db:"tpch" in
    let rows = Dbclient.Client.query conn sql in
    Minios.Program.write_file env "/out/q3.txt"
      (string_of_int (List.length rows));
    Dbclient.Client.close conn
  in
  Minios.Program.register ~name:"tpch-q3-app" program;
  let audit =
    Ldv_core.Audit.run ~packaging:Ldv_core.Audit.Included kernel server
      ~app_name:"tpch-q3-app" ~app_binary:"/bin/q3app" program
  in
  let result = Ldv_core.Replay.execute (Ldv_core.Package.build audit) in
  Alcotest.(check (list string)) "replay verified" []
    (Ldv_core.Replay.verify ~audit result)

let suite =
  [ Alcotest.test_case "all originals run" `Quick test_all_run;
    Alcotest.test_case "Q1 groups partition" `Quick test_q1_groups;
    Alcotest.test_case "Q3 order and limit" `Quick test_q3_limit_and_order;
    Alcotest.test_case "Q6 single row" `Quick test_q6_single_row;
    Alcotest.test_case "Q12 case counts" `Quick test_q12_case_counts;
    Alcotest.test_case "Q14 ratio bounds" `Quick test_q14_ratio_bounds;
    Alcotest.test_case "Q5 lineage spans tables" `Quick test_q5_lineage_spans_all_tables;
    Alcotest.test_case "audited TPC-H Q3 replays" `Quick test_audited_tpch_q3_replays ]
