open Minidb
open Ldv_core
module I = Dbclient.Interceptor

let test_relevant_excludes_app_created () =
  let audit = Lazy.force Ldv_fixtures.included in
  let relevant = Slice.relevant audit in
  let created = Slice.created_by_app (I.log audit.Audit.session) in
  Alcotest.(check bool) "some tuples relevant" true
    (not (Tid.Set.is_empty relevant));
  Alcotest.(check bool) "app-created versions excluded" true
    (Tid.Set.is_empty (Tid.Set.inter relevant created));
  (* no synthetic query-result tuples in the slice *)
  Alcotest.(check bool) "no transient result tuples" true
    (Tid.Set.for_all (fun tid -> not (I.is_result_tid tid)) relevant)

let test_relevant_matches_trace_computation () =
  let audit = Lazy.force Ldv_fixtures.included in
  let via_log = Slice.relevant audit in
  let via_trace = Slice.relevant_via_trace audit.Audit.trace in
  Alcotest.(check bool)
    (Printf.sprintf "log-based (%d) = trace-based (%d)"
       (Tid.Set.cardinal via_log) (Tid.Set.cardinal via_trace))
    true
    (Tid.Set.equal via_log via_trace)

let test_updated_tuples_pre_versions_included () =
  (* the update step touches orders rows; their pre-versions must be in
     the slice so the update can re-run *)
  let audit = Lazy.force Ldv_fixtures.included in
  let relevant = Slice.relevant audit in
  let order_tuples =
    Tid.Set.filter (fun tid -> tid.Tid.table = "orders") relevant
  in
  Alcotest.(check bool) "pre-versions of updated orders present" true
    (Tid.Set.cardinal order_tuples >= 4)

let test_slice_smaller_than_db () =
  let audit = Lazy.force Ldv_fixtures.included in
  let db = Dbclient.Server.db audit.Audit.server in
  let relevant = Slice.relevant audit in
  let total_live =
    List.fold_left
      (fun acc name ->
        acc + Table.row_count (Catalog.find (Database.catalog db) name))
      0
      (Catalog.table_names (Database.catalog db))
  in
  Alcotest.(check bool)
    (Printf.sprintf "slice (%d) well below DB size (%d)"
       (Tid.Set.cardinal relevant) total_live)
    true
    (Tid.Set.cardinal relevant * 2 < total_live)

let test_to_csvs_roundtrip () =
  let audit = Lazy.force Ldv_fixtures.included in
  let db = Dbclient.Server.db audit.Audit.server in
  let relevant = Slice.relevant audit in
  let csvs = Slice.to_csvs db relevant in
  let total_rows =
    List.fold_left
      (fun acc (_, csv) -> acc + List.length (Csv.decode_versions csv))
      0 csvs
  in
  Alcotest.(check int) "every relevant tuple serialized"
    (Tid.Set.cardinal relevant) total_rows;
  Alcotest.(check bool) "subset bytes positive" true
    (Slice.subset_bytes db relevant > 0)

let test_schema_ddl_covers_tables () =
  let audit = Lazy.force Ldv_fixtures.included in
  let db = Dbclient.Server.db audit.Audit.server in
  let relevant = Slice.relevant audit in
  let tables =
    Tid.Set.fold (fun tid acc -> tid.Tid.table :: acc) relevant []
    |> List.sort_uniq compare
  in
  let ddl = Slice.schema_ddl db relevant in
  Alcotest.(check (list string)) "one DDL per accessed table" tables
    (List.map fst ddl);
  (* the DDL parses *)
  List.iter
    (fun (_, sql) ->
      match Sql_parser.parse sql with
      | Sql_ast.Create_table _ -> ()
      | _ -> Alcotest.fail "expected CREATE TABLE")
    ddl

let test_lineage_sufficiency_of_slice () =
  (* re-running the audited queries against a DB restricted to the slice
     plus the app's own writes returns identical results — the property
     that makes server-included replay work *)
  let audit = Lazy.force Ldv_fixtures.included in
  let db = Dbclient.Server.db audit.Audit.server in
  let relevant = Slice.relevant audit in
  let restricted = Fixtures.restrict_db db relevant in
  List.iter
    (fun (s : I.stmt_event) ->
      if s.I.kind = I.Squery then begin
        (* note: the full DB at this point includes the app's inserts and
           updates, which the audited query saw; restrict to slice +
           app-created *)
        let created = Slice.created_by_app (I.log audit.Audit.session) in
        let full = Fixtures.restrict_db db (Tid.Set.union relevant created) in
        let r = Database.query full s.I.sql in
        Alcotest.(check int)
          ("row count preserved for " ^ s.I.sql_norm)
          (List.length s.I.rows)
          (List.length r.Executor.rows)
      end)
    (I.log audit.Audit.session);
  ignore restricted

let suite =
  [ Alcotest.test_case "excludes app-created" `Quick test_relevant_excludes_app_created;
    Alcotest.test_case "log-based = trace-based" `Quick test_relevant_matches_trace_computation;
    Alcotest.test_case "update pre-versions" `Quick test_updated_tuples_pre_versions_included;
    Alcotest.test_case "slice below DB size" `Quick test_slice_smaller_than_db;
    Alcotest.test_case "csv round trip" `Quick test_to_csvs_roundtrip;
    Alcotest.test_case "schema ddl" `Quick test_schema_ddl_covers_tables;
    Alcotest.test_case "slice sufficiency" `Quick test_lineage_sufficiency_of_slice ]
