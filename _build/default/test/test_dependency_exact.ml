(* Exactness of the temporal dependency inference.

   An independent brute-force implementation of Definition 11 — enumerate
   the trace paths between two entities, then search explicitly for a
   non-decreasing time sequence satisfying conditions 2 and 3 — is compared
   against Dependency.dependencies_of's memoized greedy search on small
   random acyclic traces. Agreement on every pair is a direct check of the
   soundness *and* completeness that Theorem 1 claims. *)

open Prov

(* --------------------------------------------------------------- *)
(* Random acyclic BB traces: processes read lower-numbered files and
   write higher-numbered ones, so every trace is a DAG and simple-path
   enumeration is exhaustive. *)

let random_trace seed =
  let rng = Tpch.Prng.create ~seed in
  let n_files = 3 + Tpch.Prng.int rng 3 in
  let n_procs = 1 + Tpch.Prng.int rng 3 in
  let t = Trace.create Bb_model.model in
  for i = 0 to n_files - 1 do
    ignore (Bb_model.add_file t ~path:(Printf.sprintf "f%d" i))
  done;
  let iv () =
    let a = Tpch.Prng.int rng 8 in
    Interval.make a (a + Tpch.Prng.int rng 4)
  in
  for p = 1 to n_procs do
    ignore (Bb_model.add_process t ~pid:p ~name:(Printf.sprintf "P%d" p));
    (* pick a pivot: reads strictly below, writes at-or-above *)
    let pivot = 1 + Tpch.Prng.int rng (n_files - 1) in
    let reads = 1 + Tpch.Prng.int rng 2 in
    for _ = 1 to reads do
      let f = Tpch.Prng.int rng pivot in
      ignore
        (Bb_model.read_from t ~pid:p ~path:(Printf.sprintf "f%d" f) ~time:(iv ()))
    done;
    let writes = 1 + Tpch.Prng.int rng 2 in
    for _ = 1 to writes do
      let f = pivot + Tpch.Prng.int rng (n_files - pivot) in
      ignore
        (Bb_model.has_written t ~pid:p
           ~path:(Printf.sprintf "f%d" f)
           ~time:(iv ()))
    done
  done;
  t

(* --------------------------------------------------------------- *)
(* Brute force: all simple paths source -> target, then explicit search
   over time sequences in the small discrete domain the traces use. *)

let all_paths (t : Trace.t) ~source ~target : Trace.edge list list =
  let rec go node visited =
    if String.equal node target then [ [] ]
    else
      List.concat_map
        (fun (e : Trace.edge) ->
          if List.mem e.Trace.dst visited then []
          else
            List.map
              (fun rest -> e :: rest)
              (go e.Trace.dst (e.Trace.dst :: visited)))
        (Trace.out_edges t node)
  in
  go source [ source ]

(* Conditions of Definition 11 for a concrete path, by explicit search
   over T_1 <= ... <= T_n in [0, horizon]:
   condition 2: T_i <= end(edge_i) for i in 1..n-1
   condition 3: begin(edge_{i-1}) <= T_i for i in 2..n, and T_n <= at. *)
let path_feasible ~horizon ~at (edges : Trace.edge list) : bool =
  let n = List.length edges + 1 in
  let arr = Array.of_list edges in
  let rec choose i prev =
    if i > n then true
    else
      let lo = max prev (if i >= 2 then Interval.b arr.(i - 2).Trace.time else 0) in
      let hi =
        min
          (if i <= n - 1 then Interval.e arr.(i - 1).Trace.time else max_int)
          (if i = n then at else horizon)
      in
      let rec try_t t = t <= hi && (choose (i + 1) t || try_t (t + 1)) in
      try_t lo
  in
  choose 1 0

let brute_force_depends (t : Trace.t) ~target ~source ~at : bool =
  List.exists (path_feasible ~horizon:20 ~at) (all_paths t ~source ~target)

(* --------------------------------------------------------------- *)

let prop_inference_exact =
  QCheck.Test.make ~count:150
    ~name:"Definition 11 inference = brute force (acyclic BB traces)"
    (QCheck.make
       ~print:(fun (s, a) -> Printf.sprintf "seed=%d at=%d" s a)
       QCheck.Gen.(pair nat (int_bound 12)))
    (fun (seed, at) ->
      let t = random_trace seed in
      let entities =
        List.filter_map
          (fun (n : Trace.node) ->
            if n.Trace.kind = Model.Entity then Some n.Trace.id else None)
          (Trace.nodes t)
        |> List.sort String.compare
      in
      List.for_all
        (fun target ->
          let inferred = Dependency.dependencies_of ~at t target in
          List.for_all
            (fun source ->
              if String.equal source target then true
              else
                let expected = brute_force_depends t ~target ~source ~at in
                let got = List.mem source inferred in
                if got <> expected then
                  QCheck.Test.fail_reportf
                    "mismatch: %s on %s at %d: inference=%b brute=%b" target
                    source at got expected
                else true)
            entities)
        entities)

let test_known_example () =
  (* sanity-check the brute force itself on Figure 6a/6b *)
  let chain ~read_a ~write_b ~read_b ~write_c =
    let t = Trace.create Bb_model.model in
    ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
    ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
    List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C" ];
    ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:read_a);
    ignore (Bb_model.has_written t ~pid:1 ~path:"B" ~time:write_b);
    ignore (Bb_model.read_from t ~pid:2 ~path:"B" ~time:read_b);
    ignore (Bb_model.has_written t ~pid:2 ~path:"C" ~time:write_c);
    t
  in
  let t6a =
    chain ~read_a:(Interval.make 2 3) ~write_b:(Interval.make 6 7)
      ~read_b:(Interval.make 1 5) ~write_c:(Interval.make 6 6)
  in
  Alcotest.(check bool) "6a: brute force finds no dependency" false
    (brute_force_depends t6a ~target:"file:C" ~source:"file:A" ~at:20);
  let t6b =
    chain ~read_a:(Interval.make 1 1) ~write_b:(Interval.make 4 7)
      ~read_b:(Interval.make 2 5) ~write_c:(Interval.make 1 6)
  in
  Alcotest.(check bool) "6b: brute force finds the dependency" true
    (brute_force_depends t6b ~target:"file:C" ~source:"file:A" ~at:4)

let suite =
  [ Alcotest.test_case "brute force sanity (Figure 6)" `Quick test_known_example;
    QCheck_alcotest.to_alcotest prop_inference_exact ]
