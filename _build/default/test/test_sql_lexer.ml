open Minidb
module L = Sql_lexer

let toks input =
  let lx = L.tokenize input in
  let rec go acc =
    match L.next lx with L.Eof -> List.rev acc | t -> go (t :: acc)
  in
  go []

let tok = Alcotest.testable (Fmt.of_to_string L.token_to_string) ( = )

let test_keywords_and_idents () =
  Alcotest.(check (list tok)) "keywords uppercase, idents lowercase"
    [ L.Kw "SELECT"; L.Ident "foo"; L.Kw "FROM"; L.Ident "bar" ]
    (toks "sElEcT Foo FROM BAR")

let test_numbers () =
  Alcotest.(check (list tok)) "ints and floats"
    [ L.Int_lit 42; L.Float_lit 3.5; L.Int_lit 0 ]
    (toks "42 3.5 0");
  (* 1.x without digits after the dot is int-dot, not a float *)
  Alcotest.(check (list tok)) "dot not absorbed without digit"
    [ L.Int_lit 1; L.Sym "."; L.Ident "x" ]
    (toks "1.x")

let test_strings () =
  Alcotest.(check (list tok)) "simple string" [ L.Str_lit "abc" ] (toks "'abc'");
  Alcotest.(check (list tok)) "escaped quote" [ L.Str_lit "it's" ] (toks "'it''s'");
  Alcotest.(check (list tok)) "empty string" [ L.Str_lit "" ] (toks "''")

let test_unterminated_string () =
  Alcotest.(check bool) "raises parse error" true
    (try
       ignore (toks "'oops");
       false
     with Errors.Db_error (Errors.Parse_error _) -> true)

let test_operators () =
  Alcotest.(check (list tok)) "multi-char ops"
    [ L.Sym "<="; L.Sym ">="; L.Sym "<>"; L.Sym "<>"; L.Sym "||"; L.Sym "=" ]
    (toks "<= >= <> != || =")

let test_comments () =
  Alcotest.(check (list tok)) "line comment skipped"
    [ L.Kw "SELECT"; L.Int_lit 1 ]
    (toks "SELECT -- all the things\n1")

let test_punctuation () =
  Alcotest.(check (list tok)) "parens commas"
    [ L.Sym "("; L.Int_lit 1; L.Sym ","; L.Int_lit 2; L.Sym ")"; L.Sym ";" ]
    (toks "(1, 2);")

let test_bad_char () =
  Alcotest.(check bool) "unknown char raises" true
    (try
       ignore (toks "select #");
       false
     with Errors.Db_error (Errors.Parse_error _) -> true)

let suite =
  [ Alcotest.test_case "keywords and identifiers" `Quick test_keywords_and_idents;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "punctuation" `Quick test_punctuation;
    Alcotest.test_case "bad character" `Quick test_bad_char ]
