open Minios

let run_traced f =
  let k = Kernel.create () in
  let t = Tracer.create () in
  Vfs.write_string (Kernel.vfs k) ~path:"/in" "original";
  Tracer.attach t k;
  ignore (Program.run k ~name:"app" f);
  Tracer.detach k;
  (k, t)

let test_file_access_intervals () =
  let _, t =
    run_traced (fun env ->
        ignore (Program.read_file env "/in");
        ignore (Program.read_file env "/in");
        Program.write_file env "/out" "x")
  in
  let accesses = Tracer.file_accesses t in
  (* one merged access per (pid, path, mode) *)
  Alcotest.(check int) "two access records" 2 (List.length accesses);
  let read =
    List.find (fun a -> a.Tracer.fa_path = "/in") accesses
  in
  (* the two reads are merged into one interval spanning both *)
  Alcotest.(check bool) "interval spans both opens" true
    (Prov.Interval.duration read.Tracer.fa_interval > 1)

let test_touched_paths () =
  let _, t =
    run_traced (fun env ->
        ignore (Program.read_file env "/in");
        Program.write_file env "/out" "x")
  in
  Alcotest.(check (list (pair string (list string)))) "paths and modes"
    [ ("/in", [ "read" ]); ("/out", [ "write" ]) ]
    (List.map
       (fun (p, modes) -> (p, List.map Syscall.mode_name modes))
       (Tracer.touched_paths t))

let test_snapshot_first_read_content () =
  (* CDE semantics: the package must contain the content at first access,
     even if the file is later overwritten *)
  let k, t =
    run_traced (fun env ->
        ignore (Program.read_file env "/in");
        Program.write_file env "/in" "clobbered")
  in
  (match Tracer.snapshot_content t (Kernel.vfs k) "/in" with
  | Some (Vfs.Data s) -> Alcotest.(check string) "snapshot is original" "original" s
  | _ -> Alcotest.fail "expected a snapshot");
  Alcotest.(check string) "vfs has the new content" "clobbered"
    (Vfs.read (Kernel.vfs k) "/in")

let test_bb_trace_construction () =
  let _, t =
    run_traced (fun env ->
        ignore (Program.read_file env "/in");
        ignore
          (Program.spawn env ~name:"child" (fun env' ->
               Program.write_file env' "/out" "x")))
  in
  let trace = Tracer.build_bb_trace t in
  Alcotest.(check bool) "process nodes exist" true
    (Prov.Trace.mem_node trace "proc:1" && Prov.Trace.mem_node trace "proc:2");
  Alcotest.(check bool) "file nodes exist" true
    (Prov.Trace.mem_node trace "file:/in" && Prov.Trace.mem_node trace "file:/out");
  (* the output depends on the input through the executed chain *)
  Alcotest.(check bool) "out depends on in" true
    (Prov.Dependency.depends_on trace ~target:"file:/out" ~source:"file:/in")

let test_event_count_and_order () =
  let _, t = run_traced (fun env -> ignore (Program.read_file env "/in")) in
  let events = Tracer.events t in
  Alcotest.(check int) "event count" (Tracer.event_count t) (List.length events);
  (* events are time-ordered *)
  let times = List.map Syscall.time_of events in
  Alcotest.(check (list int)) "chronological" (List.sort compare times) times

let suite =
  [ Alcotest.test_case "file access intervals" `Quick test_file_access_intervals;
    Alcotest.test_case "touched paths" `Quick test_touched_paths;
    Alcotest.test_case "first-read snapshot" `Quick test_snapshot_first_read_content;
    Alcotest.test_case "BB trace construction" `Quick test_bb_trace_construction;
    Alcotest.test_case "event ordering" `Quick test_event_count_and_order ]
