open Minidb

let q db sql = Database.query db sql

let test_selection () =
  let db = Fixtures.sales_db () in
  Fixtures.check_rows "price filter" [ "2|11"; "3|14" ]
    (q db "SELECT id, price FROM sales WHERE price > 10")

let test_projection_expressions () =
  let db = Fixtures.sales_db () in
  Fixtures.check_rows "computed column" [ "10"; "22"; "28" ]
    (q db "SELECT price * 2 AS dbl FROM sales");
  let r = q db "SELECT price * 2 AS dbl FROM sales" in
  Alcotest.(check string) "output column named" "dbl"
    r.Executor.schema.(0).Schema.name

let test_star () =
  let db = Fixtures.sales_db () in
  let r = q db "SELECT * FROM sales" in
  Alcotest.(check int) "star yields all columns" 2 (Schema.arity r.Executor.schema);
  Alcotest.(check int) "all rows" 3 (List.length r.Executor.rows)

let test_paper_sum_example () =
  (* Figure 5: result is a single row ttl = 25 with lineage {t2, t3} *)
  let db = Fixtures.sales_db () in
  let r = q db "SELECT sum(price) AS ttl FROM sales WHERE price > 10" in
  Fixtures.check_rows "ttl = 25" [ "25" ] r;
  let lineage = Executor.result_lineage r in
  let rids =
    Tid.Set.elements lineage |> List.map (fun (t : Tid.t) -> t.Tid.rid)
  in
  Alcotest.(check (list int)) "lineage is {t2, t3}" [ 2; 3 ] (List.sort compare rids)

let test_hash_join () =
  let db = Fixtures.orders_db () in
  let r =
    q db
      "SELECT cust, qty FROM orders o, items i WHERE o.okey = i.okey AND qty \
       > 1"
  in
  Fixtures.check_rows "join rows" [ "alice|2"; "alice|3" ] r;
  (* annotations multiply across the join: each result row depends on one
     orders tuple and one items tuple *)
  List.iter
    (fun (row : Executor.arow) ->
      let lin = Annotation.lineage row.Executor.ann in
      let tables =
        Tid.Set.elements lin |> List.map (fun (t : Tid.t) -> t.Tid.table)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list string)) "both sides in lineage"
        [ "items"; "orders" ] tables)
    r.Executor.rows

let test_join_plan_uses_hash_join () =
  let db = Fixtures.orders_db () in
  match Sql_parser.parse "SELECT cust FROM orders o, items i WHERE o.okey = i.okey" with
  | Sql_ast.Select s ->
    let plan = Planner.plan_select (Database.catalog db) s in
    let d = Planner.describe plan in
    Alcotest.(check bool) ("projection on top: " ^ d) true
      (String.length d >= 8 && String.sub d 0 8 = "project(");
    Alcotest.(check bool) "hashjoin present" true
      (Fixtures.contains_substring ~needle:"hashjoin" d);
    Alcotest.(check bool) "no nested loop" false
      (Fixtures.contains_substring ~needle:"nestedloop" d)
  | _ -> Alcotest.fail "parse"

let test_null_join_keys_never_match () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE a (x INT)");
  ignore (Database.exec db "CREATE TABLE b (x INT)");
  ignore (Database.exec db "INSERT INTO a VALUES (NULL), (1)");
  ignore (Database.exec db "INSERT INTO b VALUES (NULL), (1)");
  let r = q db "SELECT a.x FROM a, b WHERE a.x = b.x" in
  Fixtures.check_rows "only non-null keys join" [ "1" ] r

let test_cross_join () =
  let db = Fixtures.orders_db () in
  let r = q db "SELECT cust FROM orders, items" in
  Alcotest.(check int) "cartesian size" 12 (List.length r.Executor.rows)

let test_group_by () =
  let db = Fixtures.orders_db () in
  let r =
    q db
      "SELECT o.okey, count(*) AS n, sum(qty) AS total FROM orders o, items \
       i WHERE o.okey = i.okey GROUP BY o.okey"
  in
  Fixtures.check_rows "grouped" [ "1|2|5"; "2|1|1" ] r

let test_group_lineage_unions_members () =
  let db = Fixtures.orders_db () in
  let r =
    q db
      "SELECT o.okey, sum(qty) AS total FROM orders o, items i WHERE o.okey \
       = i.okey GROUP BY o.okey"
  in
  let row1 =
    List.find
      (fun (row : Executor.arow) -> Fixtures.int_cell row.Executor.values.(0) = 1)
      r.Executor.rows
  in
  (* group for okey=1: orders tuple 1 + items tuples 1,2 *)
  Alcotest.(check int) "lineage of group has 3 tuples" 3
    (Tid.Set.cardinal (Annotation.lineage row1.Executor.ann))

let test_aggregate_empty_input () =
  let db = Fixtures.sales_db () in
  let r = q db "SELECT count(*) AS n, sum(price) AS s FROM sales WHERE price > 100" in
  Fixtures.check_rows "count 0 / sum null" [ "0|" ] r

let test_count_vs_count_star () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1), (NULL), (3)");
  Fixtures.check_rows "count(*) counts nulls" [ "3" ] (q db "SELECT count(*) FROM t");
  Fixtures.check_rows "count(x) skips nulls" [ "2" ] (q db "SELECT count(x) FROM t")

let test_min_max_avg () =
  let db = Fixtures.sales_db () in
  Fixtures.check_rows "min/max/avg" [ "5|14|10.000000" ]
    (q db "SELECT min(price), max(price), avg(price) FROM sales")

let test_having () =
  let db = Fixtures.orders_db () in
  let r =
    q db
      "SELECT o.okey FROM orders o, items i WHERE o.okey = i.okey GROUP BY \
       o.okey HAVING count(*) > 1"
  in
  Fixtures.check_rows "having filters groups" [ "1" ] r

let test_distinct () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1), (1), (2)");
  let r = q db "SELECT DISTINCT x FROM t" in
  Fixtures.check_rows "distinct" [ "1"; "2" ] r;
  (* the deduplicated row's annotation sums both source tuples *)
  let row1 =
    List.find
      (fun (row : Executor.arow) -> Fixtures.int_cell row.Executor.values.(0) = 1)
      r.Executor.rows
  in
  Alcotest.(check int) "two derivations" 2
    (Annotation.derivation_count row1.Executor.ann)

let test_order_by_limit () =
  let db = Fixtures.sales_db () in
  let r = q db "SELECT id FROM sales ORDER BY price DESC LIMIT 2" in
  Alcotest.(check (list string)) "ordered ids" [ "3"; "2" ]
    (List.map
       (fun (row : Executor.arow) -> Value.to_raw_string row.Executor.values.(0))
       r.Executor.rows)

let test_unknown_column_in_query () =
  let db = Fixtures.sales_db () in
  Alcotest.(check bool) "unknown column raises" true
    (try
       ignore (q db "SELECT nope FROM sales");
       false
     with Errors.Db_error (Errors.Unknown_column _) -> true)

let test_fingerprint_stability () =
  let db = Fixtures.sales_db () in
  let f1 = Executor.result_fingerprint (q db "SELECT id FROM sales") in
  let f2 = Executor.result_fingerprint (q db "SELECT id FROM sales") in
  Alcotest.(check string) "same query same fingerprint" f1 f2;
  let f3 = Executor.result_fingerprint (q db "SELECT price FROM sales") in
  Alcotest.(check bool) "different result different fingerprint" true (f1 <> f3)

(* ------------------------------------------------------------------ *)
(* Property: lineage sufficiency. Evaluating a (monotone) query over the
   DB restricted to the query's lineage returns the same result. This is
   the correctness core of LDV's slicing (§VII-D).                      *)

let random_query rng =
  let pred =
    match Tpch.Prng.int rng 4 with
    | 0 -> Printf.sprintf "price > %d" (Tpch.Prng.int rng 15)
    | 1 -> Printf.sprintf "id BETWEEN %d AND %d" (Tpch.Prng.int rng 3) (2 + Tpch.Prng.int rng 4)
    | 2 -> Printf.sprintf "price < %d OR id = %d" (Tpch.Prng.int rng 12) (1 + Tpch.Prng.int rng 5)
    | _ -> "price IS NOT NULL"
  in
  match Tpch.Prng.int rng 3 with
  | 0 -> Printf.sprintf "SELECT id, price FROM sales WHERE %s" pred
  | 1 -> Printf.sprintf "SELECT sum(price) FROM sales WHERE %s" pred
  | _ -> Printf.sprintf "SELECT id, count(*) FROM sales WHERE %s GROUP BY id" pred

let prop_lineage_sufficiency =
  QCheck.Test.make ~count:100 ~name:"lineage restriction preserves results"
    (QCheck.make ~print:string_of_int QCheck.Gen.nat) (fun seed ->
      let rng = Tpch.Prng.create ~seed in
      let db = Database.create () in
      ignore (Database.exec db "CREATE TABLE sales (id INT, price INT)");
      let n = 3 + Tpch.Prng.int rng 10 in
      for k = 1 to n do
        ignore
          (Database.exec db
             (Printf.sprintf "INSERT INTO sales VALUES (%d, %d)" k
                (Tpch.Prng.int rng 20)))
      done;
      let sql = random_query rng in
      let r = Database.query db sql in
      let restricted = Fixtures.restrict_db db (Executor.result_lineage r) in
      let r' = Database.query restricted sql in
      Fixtures.row_strings (Fixtures.rows_of r)
      = Fixtures.row_strings (Fixtures.rows_of r'))

let suite =
  [ Alcotest.test_case "selection" `Quick test_selection;
    Alcotest.test_case "projection expressions" `Quick test_projection_expressions;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "paper Figure 5 example" `Quick test_paper_sum_example;
    Alcotest.test_case "hash join" `Quick test_hash_join;
    Alcotest.test_case "join plan shape" `Quick test_join_plan_uses_hash_join;
    Alcotest.test_case "null join keys" `Quick test_null_join_keys_never_match;
    Alcotest.test_case "cross join" `Quick test_cross_join;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "group lineage" `Quick test_group_lineage_unions_members;
    Alcotest.test_case "aggregate over empty" `Quick test_aggregate_empty_input;
    Alcotest.test_case "count vs count star" `Quick test_count_vs_count_star;
    Alcotest.test_case "min/max/avg" `Quick test_min_max_avg;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
    Alcotest.test_case "unknown column" `Quick test_unknown_column_in_query;
    Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
    QCheck_alcotest.to_alcotest prop_lineage_sufficiency ]
