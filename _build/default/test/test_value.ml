open Minidb

let v = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal

let test_compare_sql () =
  Alcotest.(check (option int)) "int lt" (Some (-1))
    (Value.compare_sql (Value.Int 1) (Value.Int 2));
  Alcotest.(check (option int)) "mixed int/float" (Some 0)
    (Value.compare_sql (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check (option int)) "null is incomparable" None
    (Value.compare_sql Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "string order" (Some 1)
    (Value.compare_sql (Value.Str "b") (Value.Str "a"))

let test_compare_incompatible () =
  Alcotest.check_raises "int vs string"
    (Errors.Db_error (Errors.Type_error "cannot compare values of different types"))
    (fun () -> ignore (Value.compare_sql (Value.Int 1) (Value.Str "x")))

let test_arithmetic () =
  Alcotest.check v "int add" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  Alcotest.check v "mixed mul" (Value.Float 6.0)
    (Value.mul (Value.Int 2) (Value.Float 3.0));
  Alcotest.check v "null propagates" Value.Null (Value.add Value.Null (Value.Int 1));
  Alcotest.check v "int division truncates" (Value.Int 2)
    (Value.div (Value.Int 5) (Value.Int 2));
  Alcotest.check v "float division" (Value.Float 2.5)
    (Value.div (Value.Float 5.0) (Value.Int 2));
  Alcotest.check v "negation" (Value.Int (-3)) (Value.neg (Value.Int 3));
  Alcotest.check v "concat" (Value.Str "ab")
    (Value.concat (Value.Str "a") (Value.Str "b"))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero"
    (Errors.Db_error (Errors.Type_error "division by zero"))
    (fun () -> ignore (Value.div (Value.Int 1) (Value.Int 0)))

let test_coerce () =
  Alcotest.check v "int widens to float" (Value.Float 3.0)
    (Value.coerce (Value.Int 3) Value.Tfloat);
  Alcotest.check v "null conforms to everything" Value.Null
    (Value.coerce Value.Null Value.Tint);
  Alcotest.(check bool) "string does not conform to int" false
    (Value.conforms (Value.Str "x") Value.Tint)

let test_total_order () =
  Alcotest.(check int) "null sorts first" (-1)
    (Value.compare_total Value.Null (Value.Int 0));
  Alcotest.(check int) "null equals null" 0
    (Value.compare_total Value.Null Value.Null)

let test_rendering () =
  Alcotest.(check string) "string quoting doubles quotes" "'it''s'"
    (Value.to_string (Value.Str "it's"));
  Alcotest.(check string) "null renders as NULL" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "raw string is unquoted" "it's"
    (Value.to_raw_string (Value.Str "it's"))

let test_byte_size () =
  Alcotest.(check int) "int is 8 bytes" 8 (Value.byte_size (Value.Int 7));
  Alcotest.(check int) "string is len+1" 4 (Value.byte_size (Value.Str "abc"))

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.Str s) small_string;
        map (fun b -> Value.Bool b) bool ])

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare_sql antisymmetric" ~count:300
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      match (Value.type_of a, Value.type_of b) with
      | Some ta, Some tb
        when ta = tb
             || (ta = Value.Tint && tb = Value.Tfloat)
             || (ta = Value.Tfloat && tb = Value.Tint) -> (
        match (Value.compare_sql a b, Value.compare_sql b a) with
        | Some x, Some y -> compare x 0 = compare 0 y
        | _ -> false)
      | _ -> QCheck.assume_fail ())

let prop_equal_reflexive =
  QCheck.Test.make ~name:"structural equal reflexive" ~count:300 arb_value
    (fun a -> Value.equal a a)

let suite =
  [ Alcotest.test_case "compare_sql" `Quick test_compare_sql;
    Alcotest.test_case "compare incompatible raises" `Quick test_compare_incompatible;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "coercion" `Quick test_coerce;
    Alcotest.test_case "total order" `Quick test_total_order;
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_equal_reflexive ]
