open Prov

let iv = Alcotest.testable (Fmt.of_to_string Interval.to_string) Interval.equal

let test_make () =
  Alcotest.check iv "point" (Interval.make 3 3) (Interval.point 3);
  Alcotest.(check int) "bounds" 1 (Interval.b (Interval.make 1 5));
  Alcotest.(check int) "upper" 5 (Interval.e (Interval.make 1 5));
  Alcotest.(check bool) "inverted rejected" true
    (try
       ignore (Interval.make 5 1);
       false
     with Invalid_argument _ -> true)

let test_contains_overlaps () =
  let i = Interval.make 2 6 in
  Alcotest.(check bool) "contains inner" true (Interval.contains i 4);
  Alcotest.(check bool) "contains bounds" true
    (Interval.contains i 2 && Interval.contains i 6);
  Alcotest.(check bool) "outside" false (Interval.contains i 7);
  Alcotest.(check bool) "overlap" true (Interval.overlaps i (Interval.make 6 9));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps i (Interval.make 7 9))

let test_hull_before () =
  Alcotest.check iv "hull" (Interval.make 1 9)
    (Interval.hull (Interval.make 1 3) (Interval.make 7 9));
  Alcotest.(check bool) "before" true
    (Interval.before (Interval.make 1 3) (Interval.make 3 5));
  Alcotest.(check bool) "not before" false
    (Interval.before (Interval.make 1 4) (Interval.make 3 5))

let prop_hull_contains_both =
  QCheck.Test.make ~count:200 ~name:"hull contains both intervals"
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let i1 = Interval.make (min a b) (max a b) in
      let i2 = Interval.make (min c d) (max c d) in
      let h = Interval.hull i1 i2 in
      Interval.b h <= Interval.b i1
      && Interval.b h <= Interval.b i2
      && Interval.e h >= Interval.e i1
      && Interval.e h >= Interval.e i2)

let suite =
  [ Alcotest.test_case "make/point" `Quick test_make;
    Alcotest.test_case "contains/overlaps" `Quick test_contains_overlaps;
    Alcotest.test_case "hull/before" `Quick test_hull_before;
    QCheck_alcotest.to_alcotest prop_hull_contains_both ]
