open Minidb

let schema =
  Schema.of_list
    [ Schema.column "a" Value.Tint;
      Schema.column "b" Value.Tstr;
      Schema.column "c" Value.Tfloat ]

let row = [| Value.Int 5; Value.Str "hello"; Value.Null |]

let eval_str expr_sql =
  (* parse the expression by wrapping it in a SELECT *)
  match Sql_parser.parse (Printf.sprintf "SELECT %s FROM t" expr_sql) with
  | Sql_ast.Select { items = [ Sql_ast.Item (e, _) ]; _ } ->
    Eval_expr.eval row (Eval_expr.bind schema e)
  | _ -> Alcotest.fail "bad expression"

let v = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal

let test_three_valued_logic () =
  (* NULL AND FALSE = FALSE (not NULL) *)
  Alcotest.check v "null and false" (Value.Bool false) (eval_str "c > 1.0 AND a < 0");
  Alcotest.check v "null and true" Value.Null (eval_str "c > 1.0 AND a > 0");
  Alcotest.check v "null or true" (Value.Bool true) (eval_str "c > 1.0 OR a > 0");
  Alcotest.check v "null or false" Value.Null (eval_str "c > 1.0 OR a < 0");
  Alcotest.check v "not null" Value.Null (eval_str "NOT c > 1.0")

let test_is_null () =
  Alcotest.check v "is null on null" (Value.Bool true) (eval_str "c IS NULL");
  Alcotest.check v "is not null on value" (Value.Bool true) (eval_str "a IS NOT NULL")

let test_between () =
  Alcotest.check v "in range" (Value.Bool true) (eval_str "a BETWEEN 1 AND 10");
  Alcotest.check v "below range" (Value.Bool false) (eval_str "a BETWEEN 6 AND 10");
  Alcotest.check v "null bound" Value.Null (eval_str "a BETWEEN 1 AND c")

let test_in_list () =
  Alcotest.check v "member" (Value.Bool true) (eval_str "a IN (1, 5, 9)");
  Alcotest.check v "not member" (Value.Bool false) (eval_str "a IN (1, 2)");
  Alcotest.check v "null in list is unknown" Value.Null (eval_str "c IN (1.0)");
  Alcotest.check v "miss with null member is unknown" Value.Null
    (eval_str "a IN (1, c)")

let test_like () =
  Alcotest.check v "suffix wildcard" (Value.Bool true) (eval_str "b LIKE 'hel%'");
  Alcotest.check v "infix" (Value.Bool true) (eval_str "b LIKE '%ell%'");
  Alcotest.check v "underscore" (Value.Bool true) (eval_str "b LIKE 'h_llo'");
  Alcotest.check v "no match" (Value.Bool false) (eval_str "b LIKE 'x%'");
  Alcotest.check v "not like" (Value.Bool true) (eval_str "b NOT LIKE 'x%'");
  Alcotest.check v "exact" (Value.Bool true) (eval_str "b LIKE 'hello'");
  Alcotest.check v "empty pattern vs nonempty" (Value.Bool false)
    (eval_str "b LIKE ''")

let test_eval_pred () =
  let bind e = Eval_expr.bind schema e in
  let p = bind (Sql_ast.Is_null (Sql_ast.Col (None, "c"))) in
  Alcotest.(check bool) "true pred" true (Eval_expr.eval_pred row p);
  let unknown = bind (Sql_ast.Cmp (Sql_ast.Gt, Sql_ast.Col (None, "c"), Sql_ast.Const (Value.Int 0))) in
  Alcotest.(check bool) "unknown filtered out" false (Eval_expr.eval_pred row unknown)

let test_agg_outside_context_fails () =
  Alcotest.(check bool) "aggregate rejected by binder" true
    (try
       ignore (Eval_expr.bind schema (Sql_ast.Agg (Sql_ast.Count_star, None)));
       false
     with Errors.Db_error (Errors.Unsupported _) -> true)

(* LIKE matcher against a naive reference implementation. *)
let naive_like ~pattern s =
  let rec go pi si =
    if pi = String.length pattern then si = String.length s
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from k = k <= String.length s && (go (pi + 1) k || try_from (k + 1)) in
        try_from si
      | '_' -> si < String.length s && go (pi + 1) (si + 1)
      | c -> si < String.length s && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let prop_like_matches_naive =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_bound 8))
        (string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_bound 10)))
  in
  QCheck.Test.make ~count:500 ~name:"LIKE agrees with naive matcher"
    (QCheck.make ~print:(fun (p, s) -> Printf.sprintf "%S %S" p s) gen)
    (fun (pattern, s) ->
      Eval_expr.like_match ~pattern s = naive_like ~pattern s)

let suite =
  [ Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
    Alcotest.test_case "is null" `Quick test_is_null;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "in list" `Quick test_in_list;
    Alcotest.test_case "like" `Quick test_like;
    Alcotest.test_case "predicate evaluation" `Quick test_eval_pred;
    Alcotest.test_case "aggregate outside context" `Quick test_agg_outside_context_fails;
    QCheck_alcotest.to_alcotest prop_like_matches_naive ]
