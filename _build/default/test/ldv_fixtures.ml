(* End-to-end fixtures: audited runs of the TPC-H workload at tiny scale. *)

let sf = 0.0005
let seed = 11

(* Each fixture registers its program under a unique name so that a later
   fixture cannot clobber the registration a packaged audit replays. *)
let name_counter = ref 0

let make_setup ?(sf = sf) ?(vid = "Q1-3") ?(n_insert = 10) ?(n_update = 4)
    ?(n_select = 3) () =
  let db, stats = Tpch.Dbgen.setup ~sf ~seed () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find stats vid in
  let cfg =
    { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql ~stats) with
      Tpch.Workload.n_insert;
      n_update;
      n_select }
  in
  let binary = Tpch.Workload.install_app_files kernel cfg in
  let program = Tpch.Workload.app cfg in
  incr name_counter;
  let app_name = Printf.sprintf "%s-%d" Tpch.Workload.registry_name !name_counter in
  Minios.Program.register ~name:app_name program;
  (kernel, server, cfg, binary, program, app_name)

let audit_at ?sf ?vid ?n_insert ?n_update ?n_select packaging : Ldv_core.Audit.t =
  let kernel, server, _cfg, binary, program, app_name =
    make_setup ?sf ?vid ?n_insert ?n_update ?n_select ()
  in
  Ldv_core.Audit.run ~packaging kernel server ~app_name ~app_binary:binary
    ~app_libs:Tpch.Workload.app_libs program

let audit ?vid ?n_insert ?n_update ?n_select packaging : Ldv_core.Audit.t =
  audit_at ?vid ?n_insert ?n_update ?n_select packaging

(* Cached audits shared across test files (computed lazily once). *)
let included = lazy (audit Ldv_core.Audit.Included)
let excluded = lazy (audit Ldv_core.Audit.Excluded)
let ptu = lazy (audit Ldv_core.Audit.Ptu_baseline)
