open Minios

let test_write_read () =
  let v = Vfs.create () in
  Vfs.write_string v ~path:"/a/b.txt" "hello";
  Alcotest.(check string) "read back" "hello" (Vfs.read v "/a/b.txt");
  Alcotest.(check bool) "exists" true (Vfs.exists v "/a/b.txt");
  Alcotest.(check bool) "missing" false (Vfs.exists v "/a/c.txt");
  Alcotest.(check int) "size" 5 (Vfs.size v "/a/b.txt")

let test_normalize () =
  let v = Vfs.create () in
  Vfs.write_string v ~path:"//a///b/" "x";
  Alcotest.(check bool) "normalized paths equal" true (Vfs.exists v "/a/b");
  Alcotest.(check bool) "relative rejected" true
    (try
       Vfs.write_string v ~path:"rel" "x";
       false
     with Invalid_argument _ -> true)

let test_append () =
  let v = Vfs.create () in
  Vfs.append v ~path:"/log" "a";
  Vfs.append v ~path:"/log" "b";
  Alcotest.(check string) "appended" "ab" (Vfs.read v "/log")

let test_opaque () =
  let v = Vfs.create () in
  Vfs.write_opaque v ~path:"/bin/server" 1234;
  Alcotest.(check int) "opaque size" 1234 (Vfs.size v "/bin/server");
  Alcotest.(check bool) "opaque unreadable" true
    (try
       ignore (Vfs.read v "/bin/server");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "opaque unappendable" true
    (try
       Vfs.append v ~path:"/bin/server" "x";
       false
     with Invalid_argument _ -> true)

let test_paths_under () =
  let v = Vfs.create () in
  Vfs.write_string v ~path:"/data/a" "1";
  Vfs.write_string v ~path:"/data/sub/b" "2";
  Vfs.write_string v ~path:"/database" "3";
  Alcotest.(check (list string)) "prefix respects separators"
    [ "/data/a"; "/data/sub/b" ]
    (Vfs.paths_under v "/data");
  Vfs.remove_under v "/data";
  Alcotest.(check (list string)) "removed" [] (Vfs.paths_under v "/data");
  Alcotest.(check bool) "sibling untouched" true (Vfs.exists v "/database")

let test_total_bytes_and_copy () =
  let src = Vfs.create () in
  Vfs.write_string src ~path:"/x/a" "abc";
  Vfs.write_opaque src ~path:"/x/big" 100;
  Alcotest.(check int) "total" 103 (Vfs.total_bytes src);
  let dst = Vfs.create () in
  Vfs.copy_tree ~src ~dst "/x";
  Alcotest.(check int) "copied total" 103 (Vfs.total_bytes dst);
  Alcotest.(check string) "content copied" "abc" (Vfs.read dst "/x/a")

let test_overwrite () =
  let v = Vfs.create () in
  Vfs.write_string v ~path:"/f" "one";
  Vfs.write_string v ~path:"/f" "two";
  Alcotest.(check string) "overwritten" "two" (Vfs.read v "/f")

let suite =
  [ Alcotest.test_case "write/read" `Quick test_write_read;
    Alcotest.test_case "path normalization" `Quick test_normalize;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "opaque files" `Quick test_opaque;
    Alcotest.test_case "paths_under/remove_under" `Quick test_paths_under;
    Alcotest.test_case "total bytes and copy" `Quick test_total_bytes_and_copy;
    Alcotest.test_case "overwrite" `Quick test_overwrite ]
