open Minidb

let test_query_lineage_matches_executor () =
  let db = Fixtures.sales_db () in
  let sql = "SELECT sum(price) AS ttl FROM sales WHERE price > 10" in
  let prov = Perm.Provenance_sql.query_lineage db sql in
  let direct = Database.query db sql in
  Alcotest.(check int) "same row count" (List.length direct.Executor.rows)
    (List.length prov.Perm.Provenance_sql.rows);
  Alcotest.(check bool) "lineage equals executor lineage" true
    (Tid.Set.equal
       (Perm.Provenance_sql.total_lineage prov)
       (Executor.result_lineage direct));
  Alcotest.(check (list string)) "read tables" [ "sales" ]
    prov.Perm.Provenance_sql.read_tables

let test_witnesses_and_derivations () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1), (1)");
  let prov = Perm.Provenance_sql.query_lineage db "SELECT DISTINCT x FROM t" in
  match prov.Perm.Provenance_sql.rows with
  | [ row ] ->
    Alcotest.(check int) "two derivations" 2
      (Lazy.force row.Perm.Provenance_sql.derivations);
    Alcotest.(check int) "two witnesses" 2
      (List.length (Lazy.force row.Perm.Provenance_sql.witnesses))
  | _ -> Alcotest.fail "expected one distinct row"

let test_expand_perm_style () =
  let db = Fixtures.sales_db () in
  let prov =
    Perm.Provenance_sql.query_lineage db
      "SELECT sum(price) AS ttl FROM sales WHERE price > 10"
  in
  let expanded = Perm.Provenance_sql.expand_perm_style prov in
  Alcotest.(check int) "one row per lineage tuple" 2 (List.length expanded);
  List.iter
    (fun row ->
      Alcotest.(check int) "orig columns plus 3 provenance columns" 4
        (Array.length row))
    expanded

let test_lineage_bytes () =
  let db = Fixtures.sales_db () in
  let prov =
    Perm.Provenance_sql.query_lineage db "SELECT price FROM sales WHERE price > 10"
  in
  let bytes =
    Perm.Provenance_sql.lineage_bytes db (Perm.Provenance_sql.total_lineage prov)
  in
  Alcotest.(check bool) "nonzero lineage bytes" true (bytes > 0)

let test_reenactment_query_text () =
  let stmt = Sql_parser.parse "UPDATE t SET x = 1 WHERE y > 2" in
  Alcotest.(check string) "reenactment is a select of affected rows"
    "SELECT * FROM t WHERE y > 2"
    (Perm.Reenact.reenactment_query stmt);
  let del = Sql_parser.parse "DELETE FROM t" in
  Alcotest.(check string) "delete reenactment" "SELECT * FROM t"
    (Perm.Reenact.reenactment_query del)

let test_reenact_execute_update () =
  let db = Fixtures.sales_db () in
  let stmt = Sql_parser.parse "UPDATE sales SET price = price + 1 WHERE price > 10" in
  let reenactment, info = Perm.Reenact.execute db stmt in
  (match reenactment with
  | Some r ->
    Alcotest.(check int) "pre-state has the two affected rows" 2
      (List.length r.Perm.Reenact.pre_state.Perm.Provenance_sql.rows)
  | None -> Alcotest.fail "expected reenactment");
  Alcotest.(check int) "two updated" 2 info.Database.count;
  (* pre-state lineage = versions read by the update *)
  (match reenactment with
  | Some r ->
    let pre =
      Perm.Provenance_sql.total_lineage r.Perm.Reenact.pre_state
    in
    Alcotest.(check bool) "reenactment lineage = dml read set" true
      (Tid.Set.equal pre (Tid.Set.of_list info.Database.read))
  | None -> ());
  Fixtures.check_rows "update applied" [ "1|5"; "2|12"; "3|15" ]
    (Database.query db "SELECT id, price FROM sales")

let test_reenact_insert_has_no_prestate () =
  let db = Fixtures.sales_db () in
  let stmt = Sql_parser.parse "INSERT INTO sales VALUES (9, 9)" in
  let reenactment, info = Perm.Reenact.execute db stmt in
  Alcotest.(check bool) "no reenactment for insert" true (reenactment = None);
  Alcotest.(check int) "one row" 1 info.Database.count

let test_versioning_usage () =
  let db = Fixtures.sales_db () in
  let v = Perm.Versioning.create db in
  Alcotest.(check bool) "first enable true" true (Perm.Versioning.enable_table v "sales");
  Alcotest.(check bool) "second enable false" false (Perm.Versioning.enable_table v "sales");
  Alcotest.(check (list string)) "enabled tables" [ "sales" ]
    (Perm.Versioning.enabled_tables v);
  let tid = Tid.make ~table:"sales" ~rid:1 ~version:2 in
  Perm.Versioning.record_usage v tid ~qid:7 ~pid:3 ~at:11;
  (match Perm.Versioning.usages_of v tid with
  | [ u ] ->
    Alcotest.(check int) "qid" 7 u.Perm.Versioning.used_by_qid;
    Alcotest.(check int) "pid" 3 u.Perm.Versioning.used_by_pid
  | _ -> Alcotest.fail "expected one usage");
  Alcotest.(check (list string)) "used tids" [ "sales:1@2" ]
    (List.map Tid.to_string (Perm.Versioning.used_tids v))

let test_versioning_lookup () =
  let db = Fixtures.sales_db () in
  let v = Perm.Versioning.create db in
  ignore (Database.exec db "UPDATE sales SET price = 99 WHERE id = 1");
  (* live version of rid 1 is now the updated one *)
  match Perm.Versioning.live_version v ~table:"sales" ~rid:1 with
  | Some tid -> (
    match Perm.Versioning.lookup_version v tid with
    | Some values ->
      Alcotest.(check bool) "live values updated" true
        (Value.equal values.(1) (Value.Int 99))
    | None -> Alcotest.fail "version should resolve")
  | None -> Alcotest.fail "live version should exist"

let suite =
  [ Alcotest.test_case "query lineage" `Quick test_query_lineage_matches_executor;
    Alcotest.test_case "witnesses and derivations" `Quick test_witnesses_and_derivations;
    Alcotest.test_case "perm-style expansion" `Quick test_expand_perm_style;
    Alcotest.test_case "lineage bytes" `Quick test_lineage_bytes;
    Alcotest.test_case "reenactment query" `Quick test_reenactment_query_text;
    Alcotest.test_case "reenact update" `Quick test_reenact_execute_update;
    Alcotest.test_case "insert has no pre-state" `Quick test_reenact_insert_has_no_prestate;
    Alcotest.test_case "versioning usage" `Quick test_versioning_usage;
    Alcotest.test_case "versioning lookup" `Quick test_versioning_lookup ]
