open Prov

(* ------------------------------------------------------------------ *)
(* Figure 4: blackbox dependencies ignore time.                        *)

let figure4_trace () =
  let t = Trace.create Bb_model.model in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C"; "D" ];
  ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:(Interval.make 2 3));
  ignore (Bb_model.read_from t ~pid:1 ~path:"B" ~time:(Interval.make 1 5));
  ignore (Bb_model.has_written t ~pid:1 ~path:"C" ~time:(Interval.make 2 3));
  ignore (Bb_model.has_written t ~pid:1 ~path:"D" ~time:(Interval.make 8 8));
  t

let test_bb_dependencies_figure4 () =
  let t = figure4_trace () in
  let deps = List.sort compare (Dependency.bb_dependencies t) in
  Alcotest.(check (list (pair string string)))
    "C and D depend on A and B (Def. 8, time-free)"
    [ ("file:C", "file:A"); ("file:C", "file:B");
      ("file:D", "file:A"); ("file:D", "file:B") ]
    deps

let test_bb_dependencies_through_exec_chain () =
  let t = Trace.create Bb_model.model in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
  ignore (Bb_model.add_file t ~path:"in");
  ignore (Bb_model.add_file t ~path:"out");
  ignore (Bb_model.read_from t ~pid:1 ~path:"in" ~time:(Interval.point 1));
  ignore (Bb_model.executed t ~parent:1 ~child:2 ~time:(Interval.point 2));
  ignore (Bb_model.has_written t ~pid:2 ~path:"out" ~time:(Interval.point 3));
  Alcotest.(check (list (pair string string)))
    "dependency crosses executed chain"
    [ ("file:out", "file:in") ]
    (Dependency.bb_dependencies t);
  (* but not against the chain direction: a file read by the child does
     not flow to a file written by the parent in Def. 8 *)
  let t2 = Trace.create Bb_model.model in
  ignore (Bb_model.add_process t2 ~pid:1 ~name:"P1");
  ignore (Bb_model.add_process t2 ~pid:2 ~name:"P2");
  ignore (Bb_model.add_file t2 ~path:"in");
  ignore (Bb_model.add_file t2 ~path:"out");
  ignore (Bb_model.executed t2 ~parent:1 ~child:2 ~time:(Interval.point 1));
  ignore (Bb_model.read_from t2 ~pid:2 ~path:"in" ~time:(Interval.point 2));
  ignore (Bb_model.has_written t2 ~pid:1 ~path:"out" ~time:(Interval.point 3));
  Alcotest.(check (list (pair string string))) "no reverse-chain dependency" []
    (Dependency.bb_dependencies t2)

(* ------------------------------------------------------------------ *)
(* Figure 6: temporal restriction of inference (Example 8).            *)

(* A -> P1 -> B -> P2 -> C with the given interval annotations. *)
let chain_trace ~read_a ~write_b ~read_b ~write_c =
  let t = Trace.create Bb_model.model in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
  List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C" ];
  ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:read_a);
  ignore (Bb_model.has_written t ~pid:1 ~path:"B" ~time:write_b);
  ignore (Bb_model.read_from t ~pid:2 ~path:"B" ~time:read_b);
  ignore (Bb_model.has_written t ~pid:2 ~path:"C" ~time:write_c);
  t

let test_figure6a_no_dependency () =
  (* P2 stopped reading B before P1 wrote it *)
  let t =
    chain_trace ~read_a:(Interval.make 2 3) ~write_b:(Interval.make 6 7)
      ~read_b:(Interval.make 1 5) ~write_c:(Interval.make 6 6)
  in
  Alcotest.(check bool) "C does not depend on A" false
    (Dependency.depends_on t ~target:"file:C" ~source:"file:A");
  (* B still depends on A *)
  Alcotest.(check bool) "B depends on A" true
    (Dependency.depends_on t ~target:"file:B" ~source:"file:A")

let test_figure6b_dependency_at_4 () =
  let t =
    chain_trace ~read_a:(Interval.make 1 1) ~write_b:(Interval.make 4 7)
      ~read_b:(Interval.make 2 5) ~write_c:(Interval.make 1 6)
  in
  Alcotest.(check bool) "C depends on A at time 4" true
    (Dependency.depends_on t ~at:4 ~target:"file:C" ~source:"file:A");
  Alcotest.(check bool) "C depends on A at end of trace" true
    (Dependency.depends_on t ~target:"file:C" ~source:"file:A");
  (* before anything could have flowed, no dependency *)
  Alcotest.(check bool) "no dependency at time 0" false
    (Dependency.depends_on t ~at:0 ~target:"file:C" ~source:"file:A")

let test_figure6c_no_direct_dep () =
  (* same temporal annotations as 6b, but the model knows B does not
     depend on A — so nothing can be inferred for C on A *)
  let t =
    chain_trace ~read_a:(Interval.make 1 1) ~write_b:(Interval.make 4 7)
      ~read_b:(Interval.make 2 5) ~write_c:(Interval.make 1 6)
  in
  let same_model_dep (later : Trace.node) (earlier : Trace.node) =
    not
      (String.equal later.Trace.id "file:B"
      && String.equal earlier.Trace.id "file:A")
  in
  Alcotest.(check bool) "C does not depend on A" false
    (Dependency.depends_on t ~same_model_dep ~target:"file:C" ~source:"file:A");
  Alcotest.(check bool) "C still depends on B" true
    (Dependency.depends_on t ~same_model_dep ~target:"file:C" ~source:"file:B")

(* ------------------------------------------------------------------ *)
(* Figure 2: the paper's running combined trace.                       *)

let figure2_trace () =
  let t = Combined.create () in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  ignore (Bb_model.add_process t ~pid:2 ~name:"P2");
  List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C" ];
  let tup i = Minidb.Tid.make ~table:"db" ~rid:i ~version:i in
  List.iter (fun i -> ignore (Lineage_model.add_tuple t (tup i))) [ 1; 2; 3; 4; 5 ];
  ignore (Lineage_model.add_statement t ~qid:1 ~kind:Lineage_model.Insert ~sql:"insert1");
  ignore (Lineage_model.add_statement t ~qid:2 ~kind:Lineage_model.Insert ~sql:"insert2");
  ignore (Lineage_model.add_statement t ~qid:3 ~kind:Lineage_model.Query ~sql:"query");
  ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:(Interval.make 1 6));
  ignore (Bb_model.read_from t ~pid:1 ~path:"B" ~time:(Interval.make 7 8));
  ignore (Combined.run t ~pid:1 ~qid:1 ~time:(Interval.point 5));
  ignore (Lineage_model.has_returned t ~qid:1 ~tid:(tup 1) ~time:(Interval.point 5));
  ignore (Lineage_model.has_returned t ~qid:1 ~tid:(tup 2) ~time:(Interval.point 5));
  ignore (Combined.run t ~pid:1 ~qid:2 ~time:(Interval.point 8));
  ignore (Lineage_model.has_returned t ~qid:2 ~tid:(tup 3) ~time:(Interval.point 8));
  ignore (Combined.run t ~pid:2 ~qid:3 ~time:(Interval.point 9));
  ignore (Lineage_model.has_read t ~qid:3 ~tid:(tup 1) ~time:(Interval.point 9));
  ignore (Lineage_model.has_read t ~qid:3 ~tid:(tup 3) ~time:(Interval.point 9));
  ignore (Lineage_model.has_returned t ~qid:3 ~tid:(tup 4) ~time:(Interval.point 9));
  ignore (Lineage_model.has_returned t ~qid:3 ~tid:(tup 5) ~time:(Interval.point 9));
  ignore (Combined.read_from_db t ~pid:2 ~tid:(tup 4) ~time:(Interval.point 9));
  ignore (Combined.read_from_db t ~pid:2 ~tid:(tup 5) ~time:(Interval.point 9));
  ignore (Bb_model.has_written t ~pid:2 ~path:"C" ~time:(Interval.make 7 12));
  Lineage_model.depends_on t ~result:(tup 4) ~source:(tup 1);
  Lineage_model.depends_on t ~result:(tup 4) ~source:(tup 3);
  Lineage_model.depends_on t ~result:(tup 5) ~source:(tup 1);
  Lineage_model.depends_on t ~result:(tup 5) ~source:(tup 3);
  t

let tup_id i = "tuple:db:" ^ string_of_int i ^ "@" ^ string_of_int i

let test_figure2_inference () =
  let t = figure2_trace () in
  let deps_of x = Dependency.dependencies_of t x in
  (* output file C depends on everything that flowed into it *)
  let c_deps = deps_of "file:C" in
  List.iter
    (fun d ->
      Alcotest.(check bool) ("C depends on " ^ d) true (List.mem d c_deps))
    [ "file:A"; "file:B"; tup_id 1; tup_id 3; tup_id 4; tup_id 5 ];
  (* t2 was never read by any statement: nothing depends on it *)
  Alcotest.(check bool) "C does not depend on t2" false
    (List.mem (tup_id 2) c_deps);
  (* t4 depends on its lineage and, transitively, on file A... *)
  let t4_deps = deps_of (tup_id 4) in
  List.iter
    (fun d ->
      Alcotest.(check bool) ("t4 depends on " ^ d) true (List.mem d t4_deps))
    [ tup_id 1; tup_id 3; "file:A"; "file:B" ];
  (* ...but t1 (inserted at 5) cannot depend on file B (read at [7,8]) *)
  Alcotest.(check bool) "t1 does not depend on B (temporal causality)" false
    (Dependency.depends_on t ~target:(tup_id 1) ~source:"file:B");
  Alcotest.(check bool) "t1 depends on A" true
    (Dependency.depends_on t ~target:(tup_id 1) ~source:"file:A");
  (* t3, inserted at 8, may depend on B *)
  Alcotest.(check bool) "t3 depends on B" true
    (Dependency.depends_on t ~target:(tup_id 3) ~source:"file:B")

let test_figure2_lineage_dep_required () =
  let t = figure2_trace () in
  (* kill the registered (t4, t3) dependency: then C's dependency on t3
     must survive only through t5 *)
  let same_model_dep (later : Trace.node) (earlier : Trace.node) =
    if String.equal later.Trace.node_type "tuple" then
      not
        (String.equal later.Trace.id (tup_id 4)
        && String.equal earlier.Trace.id (tup_id 3))
      && Trace.has_direct_dep t ~later:later.Trace.id ~earlier:earlier.Trace.id
    else true
  in
  Alcotest.(check bool) "t4 no longer depends on t3" false
    (Dependency.depends_on t ~same_model_dep ~target:(tup_id 4) ~source:(tup_id 3));
  Alcotest.(check bool) "C still depends on t3 via t5" true
    (Dependency.depends_on t ~same_model_dep ~target:"file:C" ~source:(tup_id 3))

let test_connected_sources_upper_bound () =
  let t = figure2_trace () in
  List.iter
    (fun (n : Trace.node) ->
      let inferred = Dependency.dependencies_of t n.Trace.id in
      let connected = Dependency.connected_sources t n.Trace.id in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s dep %s is connected" n.Trace.id d)
            true (List.mem d connected))
        inferred)
    (Trace.entities t)

let test_all_dependencies_consistent () =
  let t = figure2_trace () in
  let all = Dependency.all_dependencies t in
  List.iter
    (fun (target, source) ->
      Alcotest.(check bool) "pairwise check agrees" true
        (Dependency.depends_on t ~target ~source))
    all

(* ------------------------------------------------------------------ *)
(* Properties on random chain traces.                                  *)

(* Random linear OS pipelines file0 -> P1 -> file1 -> P2 -> ... with
   random interval annotations. *)
let random_pipeline seed =
  let rng = Tpch.Prng.create ~seed in
  let n = 2 + Tpch.Prng.int rng 4 in
  let t = Trace.create Bb_model.model in
  for i = 0 to n do
    ignore (Bb_model.add_file t ~path:(Printf.sprintf "f%d" i))
  done;
  for p = 1 to n do
    ignore (Bb_model.add_process t ~pid:p ~name:(Printf.sprintf "P%d" p));
    let iv () =
      let a = Tpch.Prng.int rng 10 in
      Interval.make a (a + Tpch.Prng.int rng 5)
    in
    ignore (Bb_model.read_from t ~pid:p ~path:(Printf.sprintf "f%d" (p - 1)) ~time:(iv ()));
    ignore (Bb_model.has_written t ~pid:p ~path:(Printf.sprintf "f%d" p) ~time:(iv ()))
  done;
  (t, n)

let prop_inferred_subset_of_connected =
  QCheck.Test.make ~count:200 ~name:"inferred deps subset of trace reachability"
    (QCheck.make ~print:string_of_int QCheck.Gen.nat) (fun seed ->
      let t, n = random_pipeline seed in
      let target = Printf.sprintf "file:f%d" n in
      let inferred = Dependency.dependencies_of t target in
      let connected = Dependency.connected_sources t target in
      List.for_all (fun d -> List.mem d connected) inferred)

let prop_monotone_in_time =
  QCheck.Test.make ~count:200 ~name:"dependencies monotone in query time"
    (QCheck.make ~print:string_of_int QCheck.Gen.nat) (fun seed ->
      let t, n = random_pipeline seed in
      let target = Printf.sprintf "file:f%d" n in
      let d1 = Dependency.dependencies_of ~at:7 t target in
      let d2 = Dependency.dependencies_of ~at:14 t target in
      List.for_all (fun d -> List.mem d d2) d1)

let prop_point_time_chain_exact =
  (* when every interaction is a point event, inference equals "times
     along the chain are non-decreasing" *)
  QCheck.Test.make ~count:200 ~name:"point-event chains: inference = sortedness"
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 2 6) (int_bound 8)))
    (fun times ->
      let t = Trace.create Bb_model.model in
      let n = List.length times / 2 in
      if n < 1 then QCheck.assume_fail ()
      else begin
        for i = 0 to n do
          ignore (Bb_model.add_file t ~path:(Printf.sprintf "f%d" i))
        done;
        let arr = Array.of_list times in
        for p = 1 to n do
          ignore (Bb_model.add_process t ~pid:p ~name:(Printf.sprintf "P%d" p));
          ignore
            (Bb_model.read_from t ~pid:p
               ~path:(Printf.sprintf "f%d" (p - 1))
               ~time:(Interval.point arr.((2 * (p - 1)))));
          ignore
            (Bb_model.has_written t ~pid:p
               ~path:(Printf.sprintf "f%d" p)
               ~time:(Interval.point arr.((2 * (p - 1)) + 1)))
        done;
        let sorted = ref true in
        for i = 0 to (2 * n) - 2 do
          if arr.(i) > arr.(i + 1) then sorted := false
        done;
        Dependency.depends_on t
          ~target:(Printf.sprintf "file:f%d" n)
          ~source:"file:f0"
        = !sorted
      end)

let suite =
  [ Alcotest.test_case "Figure 4: BB deps" `Quick test_bb_dependencies_figure4;
    Alcotest.test_case "BB deps via executed chain" `Quick
      test_bb_dependencies_through_exec_chain;
    Alcotest.test_case "Figure 6a: temporal pruning" `Quick test_figure6a_no_dependency;
    Alcotest.test_case "Figure 6b: dependency at time 4" `Quick test_figure6b_dependency_at_4;
    Alcotest.test_case "Figure 6c: missing direct dep" `Quick test_figure6c_no_direct_dep;
    Alcotest.test_case "Figure 2: combined inference" `Quick test_figure2_inference;
    Alcotest.test_case "Figure 2: lineage deps gate paths" `Quick
      test_figure2_lineage_dep_required;
    Alcotest.test_case "inferred within reachability" `Quick
      test_connected_sources_upper_bound;
    Alcotest.test_case "all_dependencies consistent" `Quick
      test_all_dependencies_consistent;
    QCheck_alcotest.to_alcotest prop_inferred_subset_of_connected;
    QCheck_alcotest.to_alcotest prop_monotone_in_time;
    QCheck_alcotest.to_alcotest prop_point_time_chain_exact ]
