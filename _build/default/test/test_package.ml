open Ldv_core

let entry_paths (pkg : Package.t) =
  List.map (fun (e : Package.entry) -> e.Package.e_path) pkg.Package.entries

let test_included_contents () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Package.build audit in
  Alcotest.(check bool) "kind" true (pkg.Package.kind = Package.Server_included);
  let paths = entry_paths pkg in
  let server = audit.Audit.server in
  Alcotest.(check bool) "server binary included" true
    (List.mem (Dbclient.Server.binary_path server) paths);
  Alcotest.(check bool) "app binary included" true
    (List.mem "/app/bin/tpch-app" paths);
  Alcotest.(check bool) "config included" true
    (List.mem "/app/etc/app.conf" paths);
  (* raw DB data files are excluded in favour of the CSV subset *)
  Alcotest.(check bool) "no raw data files" true
    (List.for_all
       (fun p ->
         not (Fixtures.contains_substring ~needle:"/var/minidb/data" p))
       paths);
  Alcotest.(check bool) "csv subset present" true (pkg.Package.db_subset <> []);
  Alcotest.(check bool) "ddl present" true (pkg.Package.db_schemas <> []);
  Alcotest.(check bool) "no recording" true (pkg.Package.recording = [])

let test_excluded_contents () =
  let audit = Lazy.force Ldv_fixtures.excluded in
  let pkg = Package.build audit in
  let paths = entry_paths pkg in
  let server = audit.Audit.server in
  Alcotest.(check bool) "no server binary" false
    (List.mem (Dbclient.Server.binary_path server) paths);
  Alcotest.(check bool) "no server libs" true
    (List.for_all
       (fun l -> not (List.mem l paths))
       (Dbclient.Server.lib_paths server));
  Alcotest.(check bool) "recording present" true (pkg.Package.recording <> []);
  Alcotest.(check bool) "no csvs" true (pkg.Package.db_subset = [])

let test_ptu_contents () =
  let audit = Lazy.force Ldv_fixtures.ptu in
  let pkg = Ptu.build audit in
  let paths = entry_paths pkg in
  Alcotest.(check bool) "full data files included" true
    (List.exists
       (Fixtures.contains_substring ~needle:"/var/minidb/data")
       paths);
  Alcotest.(check bool) "server binary included" true
    (List.mem (Dbclient.Server.binary_path audit.Audit.server) paths)

let test_size_ordering () =
  (* Figure 9's headline: PTU > server-included > server-excluded for a
     low-selectivity query. The DB-content gap only dominates the trace
     overhead once there is enough data relative to the query's
     selectivity, so this test uses its own instance (1% selectivity). *)
  let run packaging =
    Ldv_fixtures.audit_at ~sf:0.002 ~vid:"Q1-1" ~n_insert:5 ~n_update:2
      ~n_select:2 packaging
  in
  let ptu = Ptu.build (run Audit.Ptu_baseline) in
  let inc = Package.build (run Audit.Included) in
  let exc = Package.build (run Audit.Excluded) in
  let p = Package.total_bytes ptu
  and i = Package.total_bytes inc
  and e = Package.total_bytes exc in
  Alcotest.(check bool) (Printf.sprintf "ptu (%d) > included (%d)" p i) true (p > i);
  Alcotest.(check bool) (Printf.sprintf "included (%d) > excluded (%d)" i e) true (i > e);
  (* the DB-content portions make the point even more starkly: the full
     data files dwarf the relevant subset, which dwarfs nothing at all *)
  let ptu_data =
    List.fold_left
      (fun acc (en : Package.entry) ->
        if Fixtures.contains_substring ~needle:"/var/minidb/data" en.Package.e_path
        then acc + en.Package.e_size
        else acc)
      0 ptu.Package.entries
  in
  Alcotest.(check bool) "full data files exceed the csv subset" true
    (ptu_data > Package.db_subset_bytes inc)

let test_table3_matrix () =
  let ptu = Package.summarize (Ptu.build (Lazy.force Ldv_fixtures.ptu)) in
  let inc = Package.summarize (Package.build (Lazy.force Ldv_fixtures.included)) in
  let exc = Package.summarize (Package.build (Lazy.force Ldv_fixtures.excluded)) in
  Alcotest.(check bool) "PTU: server, full data, no DB provenance" true
    (ptu.Package.has_db_server
    && ptu.Package.data_files = `Full
    && not ptu.Package.has_db_provenance);
  Alcotest.(check bool) "included: server, empty data, provenance" true
    (inc.Package.has_db_server
    && inc.Package.data_files = `Empty
    && inc.Package.has_db_provenance);
  Alcotest.(check bool) "excluded: no server, provenance" true
    ((not exc.Package.has_db_server)
    && exc.Package.data_files = `None
    && exc.Package.has_db_provenance)

let test_serialization_roundtrip () =
  let pkg = Package.build (Lazy.force Ldv_fixtures.included) in
  let pkg' = Package.of_bytes (Package.to_bytes pkg) in
  Alcotest.(check bool) "kind survives" true (pkg'.Package.kind = pkg.Package.kind);
  Alcotest.(check string) "app name survives" pkg.Package.app_name pkg'.Package.app_name;
  Alcotest.(check int) "entries survive" (List.length pkg.Package.entries)
    (List.length pkg'.Package.entries);
  Alcotest.(check int) "csvs survive" (List.length pkg.Package.db_subset)
    (List.length pkg'.Package.db_subset);
  Alcotest.(check string) "trace survives" pkg.Package.trace_data pkg'.Package.trace_data;
  (* a package with a recording also round-trips *)
  let exc = Package.build (Lazy.force Ldv_fixtures.excluded) in
  let exc' = Package.of_bytes (Package.to_bytes exc) in
  Alcotest.(check int) "recording survives" (List.length exc.Package.recording)
    (List.length exc'.Package.recording)

let test_trace_embedded () =
  let pkg = Package.build (Lazy.force Ldv_fixtures.included) in
  let trace = Package.trace pkg in
  let stats = Prov.Query.stats trace in
  Alcotest.(check int) "statements preserved in packaged trace" 17
    stats.Prov.Query.statements

let test_manifest () =
  let pkg = Package.build (Lazy.force Ldv_fixtures.included) in
  let manifest = Package.manifest pkg in
  Alcotest.(check bool) "manifest lists the trace" true
    (List.mem_assoc "trace.ldv" manifest);
  let sum = List.fold_left (fun a (_, s) -> a + s) 0 manifest in
  Alcotest.(check bool) "manifest sizes roughly total" true
    (sum <= Package.total_bytes pkg + 4096)

let suite =
  [ Alcotest.test_case "included contents" `Quick test_included_contents;
    Alcotest.test_case "excluded contents" `Quick test_excluded_contents;
    Alcotest.test_case "ptu contents" `Quick test_ptu_contents;
    Alcotest.test_case "size ordering" `Quick test_size_ordering;
    Alcotest.test_case "Table III matrix" `Quick test_table3_matrix;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "embedded trace" `Quick test_trace_embedded;
    Alcotest.test_case "manifest" `Quick test_manifest ]
