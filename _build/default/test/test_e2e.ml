(* Randomized end-to-end property: for random tiny workloads (random query
   variant, random step counts), audit -> package -> replay -> verify must
   hold for every packaging option. *)

open Ldv_core

let vids = [| "Q1-1"; "Q1-5"; "Q2-2"; "Q3-2"; "Q4-2" |]

let run_case ~packaging seed =
  let rng = Tpch.Prng.create ~seed in
  let vid = Tpch.Prng.choose rng vids in
  let n_insert = 1 + Tpch.Prng.int rng 8 in
  let n_update = Tpch.Prng.int rng 5 in
  let n_select = 1 + Tpch.Prng.int rng 3 in
  let audit = Ldv_fixtures.audit ~vid ~n_insert ~n_update ~n_select packaging in
  let pkg =
    match packaging with
    | Audit.Ptu_baseline -> Ptu.build audit
    | Audit.Included | Audit.Excluded -> Package.build audit
  in
  let result = Replay.execute pkg in
  Replay.verify ~audit result

let prop packaging name =
  QCheck.Test.make ~count:8 ~name (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      match run_case ~packaging seed with
      | [] -> true
      | problems ->
        QCheck.Test.fail_reportf "replay diverged: %s"
          (String.concat "; " problems))

let props =
  [ prop Audit.Included "e2e: random workloads replay (server-included)";
    prop Audit.Excluded "e2e: random workloads replay (server-excluded)";
    prop Audit.Ptu_baseline "e2e: random workloads replay (ptu)" ]

(* A deterministic multi-variant sweep as a plain test, so failures name
   the variant. *)
let test_variant_sweep () =
  List.iter
    (fun vid ->
      let audit =
        Ldv_fixtures.audit ~vid ~n_insert:5 ~n_update:2 ~n_select:2
          Audit.Included
      in
      let result = Replay.execute (Package.build audit) in
      Alcotest.(check (list string)) (vid ^ " replays") []
        (Replay.verify ~audit result))
    [ "Q1-2"; "Q2-3"; "Q3-3"; "Q4-3" ]

let suite =
  Alcotest.test_case "variant sweep (server-included)" `Slow test_variant_sweep
  :: List.map QCheck_alcotest.to_alcotest props
