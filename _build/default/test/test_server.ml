open Minidb
open Dbclient

let test_install_writes_artifacts () =
  let kernel = Minios.Kernel.create () in
  let db = Database.create () in
  let server = Server.install kernel db in
  let vfs = Minios.Kernel.vfs kernel in
  Alcotest.(check bool) "binary installed" true
    (Minios.Vfs.exists vfs (Server.binary_path server));
  Alcotest.(check bool) "libraries installed" true
    (List.for_all (Minios.Vfs.exists vfs) (Server.lib_paths server));
  Alcotest.(check bool) "binary is large" true
    (Minios.Vfs.size vfs (Server.binary_path server) > 10_000_000)

let test_handle_statements () =
  let kernel = Minios.Kernel.create () in
  let db = Database.create () in
  let server = Server.install kernel db in
  (match Server.handle server (Protocol.Statement { sql = "CREATE TABLE t (x INT)" }) with
  | Protocol.Ddl_ok -> ()
  | _ -> Alcotest.fail "expected ddl ok");
  (match Server.handle server (Protocol.Statement { sql = "INSERT INTO t VALUES (1)" }) with
  | Protocol.Command_ok { affected = 1 } -> ()
  | _ -> Alcotest.fail "expected command ok");
  (match Server.handle server (Protocol.Statement { sql = "SELECT x FROM t" }) with
  | Protocol.Result_set { rows = [ [| Value.Int 1 |] ]; _ } -> ()
  | _ -> Alcotest.fail "expected one row");
  match Server.handle server (Protocol.Statement { sql = "SELECT nope FROM t" }) with
  | Protocol.Error_response _ -> ()
  | _ -> Alcotest.fail "expected an error response"

let test_traced_start_stop_events () =
  let kernel = Minios.Kernel.create () in
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1)");
  let server = Server.install kernel db in
  let tracer = Minios.Tracer.create () in
  Minios.Tracer.attach tracer kernel;
  let pid = Server.start_traced kernel server in
  Server.stop_traced kernel server;
  Minios.Tracer.detach kernel;
  let touched = Minios.Tracer.touched_paths tracer in
  let paths = List.map fst touched in
  Alcotest.(check bool) "server binary read" true
    (List.mem (Server.binary_path server) paths);
  Alcotest.(check bool) "data file read" true
    (List.mem (Server.data_dir server ^ "/t.dat") paths);
  (* the data file is also written at shutdown *)
  let modes = List.assoc (Server.data_dir server ^ "/t.dat") touched in
  Alcotest.(check bool) "read and written" true
    (List.mem Minios.Syscall.Read modes && List.mem Minios.Syscall.Write modes);
  Alcotest.(check bool) "server pid positive" true (pid > 0)

let test_table_image_roundtrip () =
  let db = Fixtures.sales_db () in
  ignore (Database.exec db "UPDATE sales SET price = 6 WHERE id = 1");
  let table = Catalog.find (Database.catalog db) "sales" in
  let image = Server.encode_table_image (Server.table_image table) in
  let db2 = Database.create () in
  Server.restore_table_image db2 (Server.decode_table_image image);
  Fixtures.check_rows "restored content" [ "1|6"; "2|11"; "3|14" ]
    (Database.query db2 "SELECT id, price FROM sales");
  (* tids survive: live versions in the copy carry the same rid/version *)
  let t1 = Catalog.find (Database.catalog db) "sales" in
  let t2 = Catalog.find (Database.catalog db2) "sales" in
  List.iter2
    (fun (a : Table.tuple_version) (b : Table.tuple_version) ->
      Alcotest.(check bool) "tid preserved" true (Tid.equal a.Table.tid b.Table.tid))
    (Table.scan t1) (Table.scan t2)

let test_connect_disconnect () =
  let kernel = Minios.Kernel.create () in
  let server = Server.install kernel (Database.create ()) in
  (match Server.handle server (Protocol.Connect { db_name = "x"; pid = 1 }) with
  | Protocol.Connected _ -> ()
  | _ -> Alcotest.fail "expected connected");
  match Server.handle server Protocol.Disconnect with
  | Protocol.Ddl_ok -> ()
  | _ -> Alcotest.fail "expected ok"

let suite =
  [ Alcotest.test_case "install artifacts" `Quick test_install_writes_artifacts;
    Alcotest.test_case "handle statements" `Quick test_handle_statements;
    Alcotest.test_case "traced start/stop" `Quick test_traced_start_stop_events;
    Alcotest.test_case "table image roundtrip" `Quick test_table_image_roundtrip;
    Alcotest.test_case "connect/disconnect" `Quick test_connect_disconnect ]
