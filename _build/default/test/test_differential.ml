(* Differential testing of the query pipeline.

   A deliberately naive reference interpreter — cartesian products, direct
   per-group aggregate computation, no planner, no hash joins, no indexes,
   no aggregate-slot rewriting — is run against the real
   parse/plan/execute pipeline on randomized queries over randomized
   data. Any disagreement is a bug in one of the two; the reference is
   simple enough to trust by inspection. *)

open Minidb
open Sql_ast

(* --------------------------------------------------------------- *)
(* Reference interpreter.                                           *)

let naive_rows_of_table (catalog : Catalog.t) (table, alias) :
    Schema.t * Value.t array list =
  let tbl = Catalog.find catalog table in
  let binding = Option.value alias ~default:table in
  ( Schema.with_qualifier binding (Table.schema tbl),
    List.map (fun (tv : Table.tuple_version) -> tv.Table.values) (Table.scan tbl)
  )

let cartesian (schemas_rows : (Schema.t * Value.t array list) list) :
    Schema.t * Value.t array list =
  List.fold_left
    (fun (schema, rows) (s2, rows2) ->
      ( Schema.append schema s2,
        List.concat_map
          (fun r -> List.map (fun r2 -> Array.append r r2) rows2)
          rows ))
    (Schema.of_list [], [ [||] ])
    schemas_rows

(* Direct aggregate evaluation: walk the group's rows for each Agg node. *)
let rec naive_eval_agg_expr (schema : Schema.t) (group_rows : Value.t array list)
    (e : expr) : Value.t =
  match e with
  | Agg (fn, arg) -> (
    let values =
      match (fn, arg) with
      | Count_star, _ -> List.map (fun _ -> Value.Bool true) group_rows
      | _, Some a ->
        List.map
          (fun row -> Eval_expr.eval row (Eval_expr.bind schema a))
          group_rows
      | _, None -> []
    in
    let non_null = List.filter (fun v -> not (Value.is_null v)) values in
    let as_floats =
      List.filter_map
        (function
          | Value.Int i -> Some (float_of_int i)
          | Value.Float f -> Some f
          | _ -> None)
        non_null
    in
    match fn with
    | Count_star -> Value.Int (List.length values)
    | Count -> Value.Int (List.length non_null)
    | Sum ->
      if non_null = [] then Value.Null
      else if List.exists (function Value.Float _ -> true | _ -> false) non_null
      then Value.Float (List.fold_left ( +. ) 0.0 as_floats)
      else
        Value.Int
          (List.fold_left
             (fun acc -> function Value.Int i -> acc + i | _ -> acc)
             0 non_null)
    | Avg ->
      if as_floats = [] then Value.Null
      else
        Value.Float
          (List.fold_left ( +. ) 0.0 as_floats
          /. float_of_int (List.length as_floats))
    | Min ->
      List.fold_left
        (fun acc v ->
          if Value.is_null acc then v
          else if Value.compare_total v acc < 0 then v
          else acc)
        Value.Null non_null
    | Max ->
      List.fold_left
        (fun acc v ->
          if Value.is_null acc then v
          else if Value.compare_total v acc > 0 then v
          else acc)
        Value.Null non_null)
  | Arith (op, a, b) ->
    let va = naive_eval_agg_expr schema group_rows a in
    let vb = naive_eval_agg_expr schema group_rows b in
    (match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb)
  | Neg a -> Value.neg (naive_eval_agg_expr schema group_rows a)
  | e ->
    (* no aggregate inside: evaluate against the first row of the group
       (a grouping column, constant under the group) *)
    let row = match group_rows with r :: _ -> r | [] -> [||] in
    Eval_expr.eval row (Eval_expr.bind schema e)

let naive_select (catalog : Catalog.t) (s : select) : Value.t array list =
  let from =
    List.map
      (function
        | From_table { table; alias; as_of = None } -> (table, alias)
        | _ -> failwith "naive_select: plain tables only")
      s.from
  in
  let schema, rows = cartesian (List.map (naive_rows_of_table catalog) from) in
  let rows =
    match s.where with
    | None -> rows
    | Some w ->
      let bound = Eval_expr.bind schema w in
      List.filter (fun row -> Eval_expr.eval_pred row bound) rows
  in
  let items =
    List.concat_map
      (function
        | Star ->
          Array.to_list schema
          |> List.map (fun (c : Schema.column) -> Col (c.qualifier, c.name))
        | Item (e, _) -> [ e ])
      s.items
  in
  let needs_agg = s.group_by <> [] || List.exists contains_agg items in
  let projected =
    if not needs_agg then
      List.map
        (fun row ->
          Array.of_list
            (List.map (fun e -> Eval_expr.eval row (Eval_expr.bind schema e)) items))
        rows
    else begin
      let key_of row =
        List.map
          (fun (q, n) -> row.(Schema.resolve schema ?qualifier:q n))
          s.group_by
      in
      let groups : (Value.t list * Value.t array list ref) list ref = ref [] in
      List.iter
        (fun row ->
          let key = key_of row in
          match
            List.find_opt (fun (k, _) -> List.equal Value.equal k key) !groups
          with
          | Some (_, r) -> r := row :: !r
          | None -> groups := !groups @ [ (key, ref [ row ]) ])
        rows;
      let group_list =
        if !groups = [] && s.group_by = [] then [ ([], ref []) ] else !groups
      in
      List.map
        (fun (_, group_rows) ->
          Array.of_list
            (List.map
               (fun e -> naive_eval_agg_expr schema (List.rev !group_rows) e)
               items))
        group_list
    end
  in
  let projected =
    if s.distinct then
      List.fold_left
        (fun acc row ->
          if List.exists (fun r -> Array.for_all2 Value.equal r row) acc then acc
          else acc @ [ row ])
        [] projected
    else projected
  in
  let limited =
    match s.limit with
    | None -> projected
    | Some n -> List.filteri (fun i _ -> i < n) projected
  in
  limited

(* --------------------------------------------------------------- *)
(* Random data and queries.                                         *)

let random_db rng =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t1 (a INT, b INT)");
  ignore (Database.exec db "CREATE TABLE t2 (k INT, v INT)");
  if Tpch.Prng.bool rng then
    ignore (Database.exec db "CREATE INDEX t1_a ON t1 (a)");
  let lit rng = if Tpch.Prng.int rng 8 = 0 then "NULL" else string_of_int (Tpch.Prng.int rng 6) in
  for _ = 1 to 2 + Tpch.Prng.int rng 8 do
    ignore
      (Database.exec db
         (Printf.sprintf "INSERT INTO t1 VALUES (%s, %s)" (lit rng) (lit rng)))
  done;
  for _ = 1 to 1 + Tpch.Prng.int rng 5 do
    ignore
      (Database.exec db
         (Printf.sprintf "INSERT INTO t2 VALUES (%s, %s)" (lit rng) (lit rng)))
  done;
  db

let random_pred rng cols =
  let col () = List.nth cols (Tpch.Prng.int rng (List.length cols)) in
  let const () = string_of_int (Tpch.Prng.int rng 6) in
  let atom () =
    match Tpch.Prng.int rng 5 with
    | 0 -> Printf.sprintf "%s = %s" (col ()) (const ())
    | 1 -> Printf.sprintf "%s < %s" (col ()) (const ())
    | 2 -> Printf.sprintf "%s BETWEEN %s AND %s" (col ()) (const ()) (const ())
    | 3 -> Printf.sprintf "%s IN (%s, %s)" (col ()) (const ()) (const ())
    | _ -> Printf.sprintf "%s IS NOT NULL" (col ())
  in
  match Tpch.Prng.int rng 4 with
  | 0 -> atom ()
  | 1 -> Printf.sprintf "%s AND %s" (atom ()) (atom ())
  | 2 -> Printf.sprintf "%s OR %s" (atom ()) (atom ())
  | _ -> Printf.sprintf "NOT %s" (atom ())

let random_query rng =
  let two_tables = Tpch.Prng.bool rng in
  let cols = if two_tables then [ "a"; "b"; "k"; "v" ] else [ "a"; "b" ] in
  let from = if two_tables then "t1, t2" else "t1" in
  let where =
    if Tpch.Prng.bool rng then " WHERE " ^ random_pred rng cols else ""
  in
  match Tpch.Prng.int rng 4 with
  | 0 ->
    let distinct = if Tpch.Prng.bool rng then "DISTINCT " else "" in
    Printf.sprintf "SELECT %s%s FROM %s%s" distinct
      (String.concat ", " (List.filteri (fun i _ -> i < 2) cols))
      from where
  | 1 ->
    Printf.sprintf "SELECT a + 1, b FROM %s%s LIMIT %d" from where
      (Tpch.Prng.int rng 5)
  | 2 ->
    Printf.sprintf
      "SELECT a, count(*), sum(b), min(b), max(b) FROM %s%s GROUP BY a" from
      where
  | _ ->
    Printf.sprintf "SELECT count(*), avg(%s) FROM %s%s"
      (List.nth cols (Tpch.Prng.int rng (List.length cols)))
      from where

(* --------------------------------------------------------------- *)

let rows_to_strings rows =
  List.map
    (fun row ->
      String.concat "|" (Array.to_list (Array.map Value.to_raw_string row)))
    rows
  |> List.sort String.compare

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"executor agrees with naive interpreter"
    (QCheck.make ~print:string_of_int QCheck.Gen.nat) (fun seed ->
      let rng = Tpch.Prng.create ~seed in
      let db = random_db rng in
      let sql = random_query rng in
      match Sql_parser.parse sql with
      | Select s ->
        let real = Database.query db sql in
        let expected = naive_select (Database.catalog db) s in
        let got = rows_to_strings (Executor.result_values real) in
        let want = rows_to_strings expected in
        if got <> want then
          QCheck.Test.fail_reportf "query %s:\n  executor: %s\n  naive:    %s"
            sql (String.concat " ; " got) (String.concat " ; " want)
        else true
      | _ -> false)

let suite = [ QCheck_alcotest.to_alcotest prop_differential ]
