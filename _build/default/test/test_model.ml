open Prov

let test_bb_model_shape () =
  (* Definition 3 *)
  Alcotest.(check (list string)) "one activity type" [ "process" ]
    Bb_model.model.Model.activities;
  Alcotest.(check (list string)) "one entity type" [ "file" ]
    Bb_model.model.Model.entities;
  Alcotest.(check int) "three edge types" 3
    (List.length Bb_model.model.Model.edge_types)

let test_lineage_model_shape () =
  (* Definition 4 *)
  Alcotest.(check (list string)) "four statement kinds"
    [ "query"; "insert"; "update"; "delete" ]
    Lineage_model.model.Model.activities;
  Alcotest.(check bool) "hasRead allowed into query" true
    (Model.edge_allowed Lineage_model.model ~label:"hasRead" ~src:"tuple"
       ~dst:"query");
  Alcotest.(check bool) "hasRead not allowed out of query" false
    (Model.edge_allowed Lineage_model.model ~label:"hasRead" ~src:"query"
       ~dst:"tuple")

let test_combined_model () =
  (* Definition 5: union plus cross edges *)
  let m = Combined.model in
  Alcotest.(check int) "five activities" 5 (List.length m.Model.activities);
  Alcotest.(check int) "two entities" 2 (List.length m.Model.entities);
  Alcotest.(check bool) "run edge present" true
    (Model.edge_allowed m ~label:"run" ~src:"process" ~dst:"query");
  Alcotest.(check bool) "readFromDb edge present" true
    (Model.edge_allowed m ~label:"readFromDb" ~src:"tuple" ~dst:"process");
  match Model.well_formed m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_well_formed_rejects () =
  Alcotest.(check bool) "duplicate node type rejected" true
    (match
       Model.well_formed
         { Model.name = "bad"; activities = [ "x" ]; entities = [ "x" ];
           edge_types = [] }
     with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "undeclared endpoint rejected" true
    (match
       Model.well_formed
         { Model.name = "bad2"; activities = [ "a" ]; entities = [ "e" ];
           edge_types = [ Model.edge_type "r" ~src:"a" ~dst:"ghost" ] }
     with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "edge label clashing with node type rejected" true
    (match
       Model.well_formed
         { Model.name = "bad3"; activities = [ "a" ]; entities = [ "e" ];
           edge_types = [ Model.edge_type "a" ~src:"a" ~dst:"e" ] }
     with
    | Error _ -> true
    | Ok () -> false)

let test_kind_of () =
  Alcotest.(check bool) "process is activity" true
    (Model.kind_of Bb_model.model "process" = Some Model.Activity);
  Alcotest.(check bool) "file is entity" true
    (Model.kind_of Bb_model.model "file" = Some Model.Entity);
  Alcotest.(check bool) "unknown is none" true
    (Model.kind_of Bb_model.model "tuple" = None)

let test_generic_combine () =
  let os = Bb_model.model and db = Lineage_model.model in
  let m = Model.combine ~os ~db ~os_activity:"process" ~db_activity:"query" ~db_entity:"tuple" in
  Alcotest.(check bool) "combine yields well-formed model" true
    (Model.well_formed m = Ok ())

let suite =
  [ Alcotest.test_case "P_BB shape (Def. 3)" `Quick test_bb_model_shape;
    Alcotest.test_case "P_Lin shape (Def. 4)" `Quick test_lineage_model_shape;
    Alcotest.test_case "combined model (Def. 5)" `Quick test_combined_model;
    Alcotest.test_case "well-formedness violations" `Quick test_well_formed_rejects;
    Alcotest.test_case "kind_of" `Quick test_kind_of;
    Alcotest.test_case "generic combine" `Quick test_generic_combine ]
