open Minidb

let mk () =
  Schema.of_list
    [ Schema.column ~qualifier:"o" "o_orderkey" Value.Tint;
      Schema.column ~qualifier:"o" "o_comment" Value.Tstr;
      Schema.column ~qualifier:"l" "l_orderkey" Value.Tint;
      Schema.column ~qualifier:"l" "comment" Value.Tstr ]

let test_resolve_unqualified () =
  let s = mk () in
  Alcotest.(check int) "unique name resolves" 0 (Schema.resolve s "o_orderkey");
  Alcotest.(check int) "case-insensitive" 1 (Schema.resolve s "O_COMMENT")

let test_resolve_qualified () =
  let s = mk () in
  Alcotest.(check int) "qualified" 2 (Schema.resolve s ~qualifier:"l" "l_orderkey");
  Alcotest.(check int) "qualifier case-insensitive" 3
    (Schema.resolve s ~qualifier:"L" "Comment")

let test_unknown_column () =
  let s = mk () in
  Alcotest.check_raises "unknown" (Errors.Db_error (Errors.Unknown_column "nope"))
    (fun () -> ignore (Schema.resolve s "nope"));
  Alcotest.check_raises "wrong qualifier"
    (Errors.Db_error (Errors.Unknown_column "o.comment")) (fun () ->
      ignore (Schema.resolve s ~qualifier:"o" "comment"))

let test_ambiguity () =
  let s =
    Schema.of_list
      [ Schema.column ~qualifier:"a" "x" Value.Tint;
        Schema.column ~qualifier:"b" "x" Value.Tint ]
  in
  Alcotest.check_raises "ambiguous unqualified"
    (Errors.Db_error (Errors.Ambiguous_column "x")) (fun () ->
      ignore (Schema.resolve s "x"));
  Alcotest.(check int) "qualified disambiguates" 1
    (Schema.resolve s ~qualifier:"b" "x")

let test_duplicate_column () =
  Alcotest.check_raises "duplicate rejected"
    (Errors.Db_error (Errors.Duplicate_column "x")) (fun () ->
      ignore
        (Schema.of_list
           [ Schema.column "x" Value.Tint; Schema.column "x" Value.Tstr ]))

let test_with_qualifier_append () =
  let base =
    Schema.of_list [ Schema.column "a" Value.Tint; Schema.column "b" Value.Tstr ]
  in
  let q = Schema.with_qualifier "T" base in
  Alcotest.(check int) "requalified resolves" 0 (Schema.resolve q ~qualifier:"t" "a");
  let joined = Schema.append q (Schema.with_qualifier "u" base) in
  Alcotest.(check int) "append widens" 4 (Schema.arity joined);
  Alcotest.(check int) "right side found" 3 (Schema.resolve joined ~qualifier:"u" "b")

let test_coerce_row () =
  let s =
    Schema.of_list [ Schema.column "a" Value.Tint; Schema.column "b" Value.Tfloat ]
  in
  let row = Schema.coerce_row s [| Value.Int 1; Value.Int 2 |] in
  Alcotest.(check bool) "int widened in float column" true
    (Value.equal row.(1) (Value.Float 2.0));
  Alcotest.check_raises "arity mismatch"
    (Errors.Db_error (Errors.Arity_error "expected 2 values, got 1")) (fun () ->
      ignore (Schema.coerce_row s [| Value.Int 1 |]))

let suite =
  [ Alcotest.test_case "resolve unqualified" `Quick test_resolve_unqualified;
    Alcotest.test_case "resolve qualified" `Quick test_resolve_qualified;
    Alcotest.test_case "unknown column" `Quick test_unknown_column;
    Alcotest.test_case "ambiguity" `Quick test_ambiguity;
    Alcotest.test_case "duplicate column" `Quick test_duplicate_column;
    Alcotest.test_case "requalify and append" `Quick test_with_qualifier_append;
    Alcotest.test_case "coerce row" `Quick test_coerce_row ]
