open Minidb
open Sql_ast

let parse = Sql_parser.parse

let flat_from =
  List.map (function
    | From_table { table; alias; _ } -> (table, alias)
    | From_join _ -> ("<join>", None))

let test_simple_select () =
  match parse "SELECT a, b FROM t WHERE a > 1" with
  | Select { items; from; where = Some (Cmp (Gt, Col (None, "a"), Const (Value.Int 1))); _ } ->
    Alcotest.(check int) "two items" 2 (List.length items);
    Alcotest.(check (list (pair string (option string)))) "from" [ ("t", None) ]
      (flat_from from)
  | _ -> Alcotest.fail "unexpected parse"

let test_aliases () =
  match parse "SELECT o.x AS y FROM orders o, lineitem AS l" with
  | Select { items = [ Item (Col (Some "o", "x"), Some "y") ]; from; _ } ->
    Alcotest.(check (list (pair string (option string))))
      "aliases" [ ("orders", Some "o"); ("lineitem", Some "l") ]
      (flat_from from)
  | _ -> Alcotest.fail "unexpected parse"

let test_precedence () =
  (* AND binds tighter than OR; comparison tighter than AND *)
  match parse "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3" with
  | Select { where = Some (Or (Cmp (Eq, _, _), And (Cmp _, Cmp _))); _ } -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_arith_precedence () =
  match parse "SELECT a + b * c FROM t" with
  | Select { items = [ Item (Arith (Add, Col _, Arith (Mul, _, _)), None) ]; _ } -> ()
  | _ -> Alcotest.fail "arith precedence wrong"

let test_between_like_in () =
  match parse "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE '%x%' AND c IN (1, 2)" with
  | Select { where = Some w; _ } -> (
    match Sql_ast.conjuncts w with
    | [ Between _; Like (_, "%x%"); In_list (_, [ _; _ ]) ] -> ()
    | _ -> Alcotest.fail "conjunct shapes wrong")
  | _ -> Alcotest.fail "unexpected parse"

let test_is_null_not () =
  match parse "SELECT * FROM t WHERE a IS NULL AND NOT b IS NOT NULL" with
  | Select { where = Some (And (Is_null _, Not (Is_not_null _))); _ } -> ()
  | _ -> Alcotest.fail "IS NULL parse wrong"

let test_aggregates_group_having () =
  match
    parse
      "SELECT o_orderkey, AVG(l_quantity) AS avgq FROM lineitem l, orders o \
       WHERE l.l_orderkey = o.o_orderkey GROUP BY o_orderkey HAVING count(*) \
       > 2 ORDER BY avgq DESC LIMIT 5"
  with
  | Select s ->
    Alcotest.(check int) "group by one col" 1 (List.length s.group_by);
    (match s.having with
    | Some (Cmp (Gt, Agg (Count_star, None), Const (Value.Int 2))) -> ()
    | _ -> Alcotest.fail "having wrong");
    (match s.order_by with
    | [ (Col (None, "avgq"), Desc) ] -> ()
    | _ -> Alcotest.fail "order by wrong");
    Alcotest.(check (option int)) "limit" (Some 5) s.limit
  | _ -> Alcotest.fail "unexpected parse"

let test_distinct () =
  match parse "SELECT DISTINCT a FROM t" with
  | Select { distinct = true; _ } -> ()
  | _ -> Alcotest.fail "distinct lost"

let test_insert () =
  match parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Insert { table = "t"; columns = Some [ "a"; "b" ]; source = Values rows } ->
    Alcotest.(check int) "two rows" 2 (List.length rows)
  | _ -> Alcotest.fail "insert parse wrong"

let test_insert_select () =
  match parse "INSERT INTO t SELECT a, b FROM u WHERE a > 1" with
  | Insert { table = "t"; columns = None; source = Query { from = [ _ ]; _ } } -> ()
  | _ -> Alcotest.fail "insert-select parse wrong"

let test_update_delete () =
  (match parse "UPDATE t SET a = a + 1, b = 'z' WHERE a < 10" with
  | Update { table = "t"; sets = [ ("a", Arith (Add, _, _)); ("b", Const _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "update parse wrong");
  match parse "DELETE FROM t" with
  | Delete { table = "t"; where = None } -> ()
  | _ -> Alcotest.fail "delete parse wrong"

let test_create_drop () =
  (match parse "CREATE TABLE t (a INT, b VARCHAR(10), c DOUBLE PRECISION, d BOOLEAN)" with
  | Create_table { table = "t"; columns } ->
    Alcotest.(check (list (pair string string))) "column types"
      [ ("a", "INT"); ("b", "TEXT"); ("c", "FLOAT"); ("d", "BOOL") ]
      (List.map (fun (n, ty) -> (n, Value.type_name ty)) columns)
  | _ -> Alcotest.fail "create parse wrong");
  match parse "DROP TABLE t" with
  | Drop_table "t" -> ()
  | _ -> Alcotest.fail "drop parse wrong"

let test_provenance_keyword () =
  match parse "PROVENANCE SELECT a FROM t" with
  | Provenance _ -> ()
  | _ -> Alcotest.fail "PROVENANCE prefix lost"

let test_trailing_garbage () =
  Alcotest.(check bool) "trailing tokens rejected" true
    (try
       ignore (parse "SELECT a FROM t garbage garbage");
       false
     with Errors.Db_error (Errors.Parse_error _) -> true)

let test_script () =
  let stmts = Sql_parser.parse_script "SELECT a FROM t; DELETE FROM t; " in
  Alcotest.(check int) "two statements" 2 (List.length stmts)

(* Round-trip: pretty-printing a parsed statement re-parses to the same
   normalized text. *)
let roundtrip_cases =
  [ "SELECT a, b FROM t WHERE a > 1";
    "SELECT DISTINCT o.x AS y, 3.5 FROM orders o WHERE x LIKE '%a_b%' ORDER \
     BY y DESC LIMIT 3";
    "SELECT count(*), sum(a), avg(b) FROM t GROUP BY c HAVING count(*) > 1";
    "INSERT INTO t VALUES (1, NULL, 'it''s', TRUE)";
    "UPDATE t SET a = -(a) WHERE b BETWEEN 1 AND 2 OR c IS NULL";
    "DELETE FROM t WHERE NOT a IN (1, 2, 3)";
    "SELECT a || 'x' FROM t WHERE a <> 'y'";
    "PROVENANCE SELECT a FROM t WHERE b = 1" ]

let test_roundtrip () =
  List.iter
    (fun sql ->
      let n1 = Pretty.normalize sql in
      let n2 = Pretty.normalize n1 in
      Alcotest.(check string) ("fixpoint: " ^ sql) n1 n2)
    roundtrip_cases

let suite =
  [ Alcotest.test_case "simple select" `Quick test_simple_select;
    Alcotest.test_case "aliases" `Quick test_aliases;
    Alcotest.test_case "boolean precedence" `Quick test_precedence;
    Alcotest.test_case "arith precedence" `Quick test_arith_precedence;
    Alcotest.test_case "between/like/in" `Quick test_between_like_in;
    Alcotest.test_case "is null" `Quick test_is_null_not;
    Alcotest.test_case "aggregates" `Quick test_aggregates_group_having;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "insert-select" `Quick test_insert_select;
    Alcotest.test_case "update/delete" `Quick test_update_delete;
    Alcotest.test_case "create/drop" `Quick test_create_drop;
    Alcotest.test_case "provenance keyword" `Quick test_provenance_keyword;
    Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
    Alcotest.test_case "script" `Quick test_script;
    Alcotest.test_case "pretty-print round trip" `Quick test_roundtrip ]
