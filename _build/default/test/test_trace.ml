open Prov

let mk () = Trace.create Combined.model

let test_add_node_validation () =
  let t = mk () in
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ());
  Alcotest.(check bool) "unknown type rejected" true
    (try
       ignore (Trace.add_node t ~id:"x" ~node_type:"martian" ());
       false
     with Invalid_argument _ -> true);
  (* idempotent re-add with same type is fine *)
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ());
  Alcotest.(check int) "one node" 1 (Trace.node_count t);
  Alcotest.(check bool) "re-add with different type rejected" true
    (try
       ignore (Trace.add_node t ~id:"p1" ~node_type:"file" ());
       false
     with Invalid_argument _ -> true)

let test_add_edge_validation () =
  let t = mk () in
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ());
  ignore (Trace.add_node t ~id:"f1" ~node_type:"file" ());
  ignore
    (Trace.add_edge t ~label:"readFrom" ~src:"f1" ~dst:"p1"
       ~time:(Interval.make 1 3));
  Alcotest.(check bool) "wrong direction rejected" true
    (try
       ignore
         (Trace.add_edge t ~label:"readFrom" ~src:"p1" ~dst:"f1"
            ~time:(Interval.point 1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown node rejected" true
    (try
       ignore
         (Trace.add_edge t ~label:"readFrom" ~src:"ghost" ~dst:"p1"
            ~time:(Interval.point 1));
       false
     with Invalid_argument _ -> true)

let test_adjacency () =
  let t = mk () in
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ());
  ignore (Trace.add_node t ~id:"f1" ~node_type:"file" ());
  ignore (Trace.add_node t ~id:"f2" ~node_type:"file" ());
  ignore (Trace.add_edge t ~label:"readFrom" ~src:"f1" ~dst:"p1" ~time:(Interval.make 1 2));
  ignore (Trace.add_edge t ~label:"hasWritten" ~src:"p1" ~dst:"f2" ~time:(Interval.make 3 4));
  Alcotest.(check int) "in edges of p1" 1 (List.length (Trace.in_edges t "p1"));
  Alcotest.(check int) "out edges of p1" 1 (List.length (Trace.out_edges t "p1"));
  Alcotest.(check int) "entities" 2 (List.length (Trace.entities t));
  Alcotest.(check int) "activities" 1 (List.length (Trace.activities t))

let test_state () =
  (* Definition 10: incoming interactions that began no later than T *)
  let t = mk () in
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ());
  ignore (Trace.add_node t ~id:"f1" ~node_type:"file" ());
  ignore (Trace.add_node t ~id:"f2" ~node_type:"file" ());
  ignore (Trace.add_edge t ~label:"readFrom" ~src:"f1" ~dst:"p1" ~time:(Interval.make 2 4));
  ignore (Trace.add_edge t ~label:"readFrom" ~src:"f2" ~dst:"p1" ~time:(Interval.make 6 8));
  Alcotest.(check (list string)) "state at 1 empty" [] (Trace.state t "p1" ~at:1);
  Alcotest.(check (list string)) "state at 4" [ "f1" ] (Trace.state t "p1" ~at:4);
  Alcotest.(check (list string)) "state at 7 has both" [ "f1"; "f2" ]
    (List.sort compare (Trace.state t "p1" ~at:7))

let test_dependency_registry () =
  let t = mk () in
  ignore (Trace.add_node t ~id:"t1" ~node_type:"tuple" ());
  ignore (Trace.add_node t ~id:"t2" ~node_type:"tuple" ());
  ignore (Trace.add_node t ~id:"p" ~node_type:"process" ());
  Trace.add_dependency t ~later:"t2" ~earlier:"t1";
  Trace.add_dependency t ~later:"t2" ~earlier:"t1" (* dedup *);
  Alcotest.(check (list string)) "deps recorded" [ "t1" ] (Trace.direct_deps_of t "t2");
  Alcotest.(check bool) "has_direct_dep" true
    (Trace.has_direct_dep t ~later:"t2" ~earlier:"t1");
  Alcotest.(check bool) "activity endpoint rejected" true
    (try
       Trace.add_dependency t ~later:"t2" ~earlier:"p";
       false
     with Invalid_argument _ -> true)

let build_rich_trace () =
  let t = mk () in
  ignore (Trace.add_node t ~id:"p1" ~node_type:"process" ~label:"app[1]"
            ~attrs:[ ("pid", "1"); ("weird", "a\tb\nc") ] ());
  ignore (Trace.add_node t ~id:"f1" ~node_type:"file" ());
  ignore (Trace.add_node t ~id:"q1" ~node_type:"query" ());
  ignore (Trace.add_node t ~id:"t1" ~node_type:"tuple" ());
  ignore (Trace.add_edge t ~label:"readFrom" ~src:"f1" ~dst:"p1" ~time:(Interval.make 1 6));
  ignore (Trace.add_edge t ~label:"run" ~src:"p1" ~dst:"q1" ~time:(Interval.point 7));
  ignore (Trace.add_edge t ~label:"hasRead" ~src:"t1" ~dst:"q1" ~time:(Interval.point 7));
  Trace.add_dependency t ~later:"t1" ~earlier:"t1" |> ignore;
  t

let test_serialize_roundtrip () =
  let t = build_rich_trace () in
  let data = Trace.serialize t in
  let t' = Trace.deserialize Combined.model data in
  Alcotest.(check int) "nodes survive" (Trace.node_count t) (Trace.node_count t');
  Alcotest.(check int) "edges survive" (Trace.edge_count t) (Trace.edge_count t');
  let n = Trace.node_exn t' "p1" in
  Alcotest.(check string) "label survives" "app[1]" n.Trace.label;
  Alcotest.(check (option string)) "attr with tab/newline survives"
    (Some "a\tb\nc")
    (List.assoc_opt "weird" n.Trace.attrs);
  Alcotest.(check (list string)) "deps survive" [ "t1" ]
    (Trace.direct_deps_of t' "t1");
  (* double roundtrip is stable *)
  Alcotest.(check string) "serialize fixpoint" (Trace.serialize t')
    (Trace.serialize (Trace.deserialize Combined.model (Trace.serialize t')))

let suite =
  [ Alcotest.test_case "node validation" `Quick test_add_node_validation;
    Alcotest.test_case "edge validation" `Quick test_add_edge_validation;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "state (Def. 10)" `Quick test_state;
    Alcotest.test_case "dependency registry" `Quick test_dependency_registry;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip ]
