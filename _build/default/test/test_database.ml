open Minidb

let test_insert_info () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  let info = Database.dml db "INSERT INTO t VALUES (1), (2)" in
  Alcotest.(check int) "two rows" 2 info.Database.count;
  Alcotest.(check int) "two written tids" 2 (List.length info.Database.written);
  Alcotest.(check int) "inserts read nothing" 0 (List.length info.Database.read);
  List.iter
    (fun (_, deps) -> Alcotest.(check int) "no deps" 0 (List.length deps))
    info.Database.deps

let test_insert_with_columns () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (a INT, b TEXT, c INT)");
  ignore (Database.exec db "INSERT INTO t (c, a) VALUES (3, 1)");
  Fixtures.check_rows "missing columns null" [ "1||3" ]
    (Database.query db "SELECT a, b, c FROM t")

let test_update_provenance () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT, y INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  let info = Database.dml db "UPDATE t SET y = y + 1 WHERE x >= 2" in
  Alcotest.(check int) "two affected" 2 info.Database.count;
  Alcotest.(check int) "two new versions" 2 (List.length info.Database.written);
  (* each new version depends on exactly its pre-version, same rid *)
  List.iter
    (fun ((w : Tid.t), deps) ->
      match deps with
      | [ (old : Tid.t) ] ->
        Alcotest.(check int) "rid stable across update" w.Tid.rid old.Tid.rid;
        Alcotest.(check bool) "version advanced" true
          (w.Tid.version > old.Tid.version)
      | _ -> Alcotest.fail "expected exactly one dependency")
    info.Database.deps;
  Fixtures.check_rows "values updated" [ "1|10"; "2|21"; "3|31" ]
    (Database.query db "SELECT x, y FROM t")

let test_update_sees_pre_state () =
  (* SET expressions evaluate against the pre-state of the row *)
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT, y INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1, 100)");
  ignore (Database.exec db "UPDATE t SET x = y, y = x");
  Fixtures.check_rows "swap via pre-state" [ "100|1" ]
    (Database.query db "SELECT x, y FROM t")

let test_delete_provenance () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1), (2), (3)");
  let info = Database.dml db "DELETE FROM t WHERE x > 1" in
  Alcotest.(check int) "two deleted" 2 info.Database.count;
  Alcotest.(check int) "victims recorded as reads" 2 (List.length info.Database.read);
  Fixtures.check_rows "one row left" [ "1" ] (Database.query db "SELECT x FROM t")

let test_clock_advances () =
  let db = Database.create () in
  let c0 = Database.clock db in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1)");
  Alcotest.(check bool) "clock advanced" true (Database.clock db > c0);
  Database.sync_clock db ~at:1000;
  Alcotest.(check int) "sync forward" 1000 (Database.clock db);
  Database.sync_clock db ~at:5;
  Alcotest.(check int) "sync never rewinds" 1000 (Database.clock db)

let test_provenance_select () =
  let db = Fixtures.sales_db () in
  let r = Database.query db "PROVENANCE SELECT sum(price) AS ttl FROM sales WHERE price > 10" in
  (* one result row expanded to one output row per lineage tuple *)
  Alcotest.(check int) "expanded rows" 2 (List.length r.Executor.rows);
  Alcotest.(check int) "provenance columns appended" 4
    (Schema.arity r.Executor.schema);
  Alcotest.(check string) "prov_rowid column present" "prov_rowid"
    r.Executor.schema.(2).Schema.name

let test_exec_script () =
  let db = Database.create () in
  (match
     Database.exec_script db
       "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT x FROM t"
   with
  | Database.Rows r -> Alcotest.(check int) "last result" 1 (List.length r.Executor.rows)
  | _ -> Alcotest.fail "expected rows");
  Alcotest.(check bool) "table exists" true (Catalog.mem (Database.catalog db) "t")

let test_bulk_insert () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  let tids = Database.bulk_insert db ~table:"t" [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  Alcotest.(check int) "two tids" 2 (List.length tids);
  (* one clock tick for the whole batch *)
  let versions = List.map (fun (t : Tid.t) -> t.Tid.version) tids in
  Alcotest.(check bool) "same version" true
    (List.for_all (fun v -> v = List.hd versions) versions)

let test_unknown_table () =
  let db = Database.create () in
  Alcotest.check_raises "unknown table"
    (Errors.Db_error (Errors.Unknown_table "nope")) (fun () ->
      ignore (Database.exec db "SELECT x FROM nope"))

let test_duplicate_table () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  Alcotest.check_raises "duplicate table"
    (Errors.Db_error (Errors.Duplicate_table "t")) (fun () ->
      ignore (Database.exec db "CREATE TABLE t (y INT)"))

let suite =
  [ Alcotest.test_case "insert info" `Quick test_insert_info;
    Alcotest.test_case "insert with column list" `Quick test_insert_with_columns;
    Alcotest.test_case "update provenance" `Quick test_update_provenance;
    Alcotest.test_case "update sees pre-state" `Quick test_update_sees_pre_state;
    Alcotest.test_case "delete provenance" `Quick test_delete_provenance;
    Alcotest.test_case "clock" `Quick test_clock_advances;
    Alcotest.test_case "PROVENANCE SELECT" `Quick test_provenance_select;
    Alcotest.test_case "script" `Quick test_exec_script;
    Alcotest.test_case "bulk insert" `Quick test_bulk_insert;
    Alcotest.test_case "unknown table" `Quick test_unknown_table;
    Alcotest.test_case "duplicate table" `Quick test_duplicate_table ]
