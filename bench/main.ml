(* The LDV benchmark harness: regenerates every table and figure of the
   paper's evaluation (§IX).

   Usage: main.exe [table1|table2|table3|fig7a|fig7b|fig8a|fig8b|fig9|vmi|
                    ablation|micro|profile|concurrent|all]
                   [--sf FLOAT] [--paper-counts]

   The workload follows §IX-A: Insert n tuples into orders, run one of the
   Table II queries n times, update n orders. `--paper-counts` uses the
   paper's 1000/10/100; the default uses reduced counts for the 18-query
   sweeps so `all` completes in minutes. Absolute times differ from the
   paper (simulated substrate); the reported *shape* is what reproduces. *)

open Ldv_core
module I = Dbclient.Interceptor

let sf = ref 0.01
let paper_counts = ref false

let now () = Unix.gettimeofday ()

(* Wall-clock a thunk; with [?span] the measurement is also recorded as an
   [Ldv_obs] span, so the harness's own timing shows up in BENCH_obs.json. *)
let time ?span f =
  let measure () =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  match span with
  | None -> measure ()
  | Some name -> Ldv_obs.with_span name measure

let s = Report.seconds
let mb bytes = Printf.sprintf "%.2f" (float_of_int bytes /. 1e6)

module Str_replace = struct
  (* first-occurrence substring replacement, for query rewriting in
     ablations *)
  let replace haystack ~needle ~replacement =
    let hl = String.length haystack and nl = String.length needle in
    let rec find i =
      if i + nl > hl then None
      else if String.sub haystack i nl = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> haystack
    | Some i ->
      String.sub haystack 0 i ^ replacement
      ^ String.sub haystack (i + nl) (hl - i - nl)
end

(* ------------------------------------------------------------------ *)
(* Instance cache: generate the TPC-H instance once, snapshot it as
   native table images, and restore a fresh mutable copy per run.      *)

module Instance = struct
  type t = { stats : Tpch.Dbgen.stats; images : string list }

  let cache : (float, t) Hashtbl.t = Hashtbl.create 4

  let get ~sf =
    match Hashtbl.find_opt cache sf with
    | Some c -> c
    | None ->
      let db, stats = Tpch.Dbgen.setup ~sf ~seed:42 () in
      let images =
        List.map
          (fun name ->
            Dbclient.Server.encode_table_image
              (Dbclient.Server.table_image
                 (Minidb.Catalog.find (Minidb.Database.catalog db) name)))
          (Minidb.Catalog.table_names (Minidb.Database.catalog db))
      in
      let c = { stats; images } in
      Hashtbl.replace cache sf c;
      c

  let fresh_db (c : t) : Minidb.Database.t =
    let db = Minidb.Database.create ~name:"tpch" () in
    List.iter
      (fun img ->
        Dbclient.Server.restore_table_image db
          (Dbclient.Server.decode_table_image img))
      c.images;
    db
end

(* ------------------------------------------------------------------ *)
(* Systems under test.                                                 *)

type system = Sys_ptu | Sys_included | Sys_excluded

let systems = [ Sys_ptu; Sys_included; Sys_excluded ]

let system_name = function
  | Sys_ptu -> "PostgreSQL+PTU"
  | Sys_included -> "Server-included"
  | Sys_excluded -> "Server-excluded"

let packaging_of = function
  | Sys_ptu -> Audit.Ptu_baseline
  | Sys_included -> Audit.Included
  | Sys_excluded -> Audit.Excluded

(* Per-step wall-clock accumulator for the Figure 7 bars. *)
type steps = {
  mutable t_insert : float;
  mutable t_first : float;
  mutable t_rest : float;
  mutable t_update : float;
}

let zero_steps () = { t_insert = 0.; t_first = 0.; t_rest = 0.; t_update = 0. }

let reset st =
  st.t_insert <- 0.;
  st.t_first <- 0.;
  st.t_rest <- 0.;
  st.t_update <- 0.

let step_name = function
  | Tpch.Workload.Insert_step -> "insert"
  | Tpch.Workload.First_select -> "first_select"
  | Tpch.Workload.Other_selects -> "other_selects"
  | Tpch.Workload.Update_step -> "update"

let step_hook st step body =
  let _, dt = time ~span:("bench.step." ^ step_name step) body in
  match step with
  | Tpch.Workload.Insert_step -> st.t_insert <- st.t_insert +. dt
  | Tpch.Workload.First_select -> st.t_first <- st.t_first +. dt
  | Tpch.Workload.Other_selects -> st.t_rest <- st.t_rest +. dt
  | Tpch.Workload.Update_step -> st.t_update <- st.t_update +. dt

type counts = { n_insert : int; n_select : int; n_update : int }

let fig7_counts () =
  if !paper_counts then { n_insert = 1000; n_select = 10; n_update = 100 }
  else { n_insert = 300; n_select = 10; n_update = 50 }

let sweep_counts () =
  if !paper_counts then { n_insert = 1000; n_select = 10; n_update = 100 }
  else { n_insert = 100; n_select = 10; n_update = 20 }

let name_counter = ref 0

(* One audited experiment: fresh instance, fresh kernel, chosen system. *)
type experiment = {
  audit : Audit.t;
  steps : steps;
  total_audit_s : float;
  app_name : string;
}

let run_audit ?counts ~vid system : experiment =
  let counts = match counts with Some c -> c | None -> sweep_counts () in
  (* stabilize the heap so run order does not skew comparisons *)
  Gc.compact ();
  let inst = Instance.get ~sf:!sf in
  let db = Instance.fresh_db inst in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find inst.Instance.stats vid in
  let cfg =
    { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql
         ~stats:inst.Instance.stats)
      with
      Tpch.Workload.n_insert = counts.n_insert;
      n_select = counts.n_select;
      n_update = counts.n_update }
  in
  let binary = Tpch.Workload.install_app_files kernel cfg in
  let st = zero_steps () in
  let program = Tpch.Workload.app ~step_hook:(step_hook st) cfg in
  incr name_counter;
  let app_name = Printf.sprintf "bench-app-%d" !name_counter in
  Minios.Program.register ~name:app_name program;
  let audit, total =
    time ~span:"bench.audit" (fun () ->
        Audit.run ~packaging:(packaging_of system) kernel server ~app_name
          ~app_binary:binary ~app_libs:Tpch.Workload.app_libs program)
  in
  { audit; steps = st; total_audit_s = total; app_name }

let build_package (e : experiment) : Package.t =
  match e.audit.Audit.packaging with
  | Audit.Ptu_baseline -> Ptu.build e.audit
  | Audit.Included | Audit.Excluded -> Package.build e.audit

(* Replay an experiment's package, timing initialization and steps. *)
type replay_times = { init_s : float; rsteps : steps; verified : bool }

let run_replay (e : experiment) (pkg : Package.t) : replay_times =
  Gc.compact ();
  reset e.steps;
  let prepared, init_s = time ~span:"bench.replay_init" (fun () -> Replay.prepare pkg) in
  let result = Replay.run prepared in
  let verified = Replay.verify ~audit:e.audit result = [] in
  ({ init_s; rsteps = e.steps; verified } : replay_times)

(* ------------------------------------------------------------------ *)
(* Table I: interposition summary (qualitative).                       *)

let table1 () =
  Report.section "Table I: OS and DB interposition (server-included)";
  Report.print_table
    ~header:[ "Method"; "Operating system"; "DB" ]
    [ [ "Monitoring";
        "ptrace-style syscall interception (minios tracer)";
        "instrumented client library (dbclient interceptor)" ];
      [ "  on event";
        "record path parameters of open/close, fork/exec";
        "record statements + provenance-affecting tuples (Perm lineage)" ];
      [ "Replaying";
        "file syscalls resolve inside the package VFS";
        "DB restored from recorded tuple versions before any query" ] ]

(* ------------------------------------------------------------------ *)
(* Table II: the 18 queries with realized parameters/selectivities.    *)

let table2 () =
  Report.section "Table II: workload queries (measured on this instance)";
  let inst = Instance.get ~sf:!sf in
  let db = Instance.fresh_db inst in
  let rows =
    List.map
      (fun (v : Tpch.Queries.variant) ->
        let r = Minidb.Database.query db v.Tpch.Queries.sql in
        let sel =
          Tpch.Queries.measured_selectivity db inst.Instance.stats v
        in
        [ v.Tpch.Queries.vid;
          v.Tpch.Queries.nominal_param;
          v.Tpch.Queries.param;
          Printf.sprintf "%.3f%%" (100. *. v.Tpch.Queries.target_selectivity);
          Printf.sprintf "%.3f%%" (100. *. sel);
          string_of_int (List.length r.Minidb.Executor.rows) ])
      (Tpch.Queries.variants inst.Instance.stats)
  in
  Report.print_table
    ~header:
      [ "Query"; "Paper PARAM"; "Scaled PARAM"; "Target sel."; "Measured sel.";
        "Rows" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table III: package contents matrix, derived from real packages.     *)

let table3 () =
  Report.section "Table III: package contents";
  let pkg_of system =
    let e =
      run_audit ~counts:{ n_insert = 20; n_select = 2; n_update = 5 }
        ~vid:"Q1-1" system
    in
    build_package e
  in
  let rows =
    List.map
      (fun system ->
        let summary = Package.summarize (pkg_of system) in
        [ system_name system;
          (if summary.Package.has_software_binaries then "yes" else "no");
          (if summary.Package.has_db_server then "yes" else "no");
          (match summary.Package.data_files with
          | `Full -> "yes (full)"
          | `Empty -> "yes (empty)"
          | `None -> "no");
          (if summary.Package.has_db_provenance then "yes" else "no") ])
      systems
  in
  Report.print_table
    ~header:
      [ "Package type"; "Software binaries"; "DB server"; "Data files";
        "DB provenance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 7a: audit time per application step (query Q1-1).            *)

let fig7_experiments = ref ([] : (system * experiment) list)

let get_fig7_experiments () =
  if !fig7_experiments = [] then
    fig7_experiments :=
      List.map
        (fun sys -> (sys, run_audit ~counts:(fig7_counts ()) ~vid:"Q1-1" sys))
        systems;
  !fig7_experiments

let fig7a () =
  Report.section "Figure 7a: audit time per step (Q1-1)";
  let exps = get_fig7_experiments () in
  let rows =
    List.map
      (fun (sys, e) ->
        [ system_name sys;
          s e.steps.t_insert;
          s e.steps.t_first;
          s e.steps.t_rest;
          s e.steps.t_update;
          s e.total_audit_s ])
      exps
  in
  Report.print_table
    ~header:
      [ "System"; "Inserts"; "First Select"; "Other Selects"; "Updates";
        "Total (incl. setup)" ]
    rows;
  Report.note
    "Expected shape: server-included pays provenance queries on Selects and\n\
     reenactment on Updates; inserts are cheap everywhere; server-excluded\n\
     only pays result recording.\n"

(* ------------------------------------------------------------------ *)
(* Figure 7b: replay time per step (query Q1-1).                       *)

let fig7b () =
  Report.section "Figure 7b: replay time per step (Q1-1)";
  let exps = get_fig7_experiments () in
  let rows =
    List.map
      (fun (sys, e) ->
        let pkg = build_package e in
        let r = run_replay e pkg in
        [ system_name sys;
          s r.init_s;
          s r.rsteps.t_first;
          s r.rsteps.t_rest;
          s r.rsteps.t_insert;
          s r.rsteps.t_update;
          (if r.verified then "yes" else "NO") ])
      exps
  in
  Report.print_table
    ~header:
      [ "System"; "Initialization"; "First Select"; "Other Selects";
        "Inserts"; "Updates"; "Verified" ]
    rows;
  Report.note
    "Expected shape: server-included pays per-tuple DB initialization from\n\
     the packaged CSVs but queries then run on the (smaller) subset;\n\
     server-excluded answers reads from disk in time linear in result size.\n"

(* ------------------------------------------------------------------ *)
(* Figures 8a/8b and 9: the 18-query sweep.                            *)

type sweep_row = {
  sw_vid : string;
  sw_system : system;
  sw_audit_query_s : float;  (** avg per query execution while audited *)
  sw_replay_query_s : float;  (** avg per query execution during replay *)
  sw_pkg_bytes : int;
  sw_verified : bool;
}

let sweep_cache = ref ([] : sweep_row list)

let baseline_query_times : (string, float) Hashtbl.t = Hashtbl.create 32

let baseline_query_s vid =
  match Hashtbl.find_opt baseline_query_times vid with
  | Some t -> t
  | None ->
    let inst = Instance.get ~sf:!sf in
    let db = Instance.fresh_db inst in
    let q = Tpch.Queries.find inst.Instance.stats vid in
    (* warm once, then measure three runs *)
    ignore (Minidb.Database.query db q.Tpch.Queries.sql);
    let _, dt =
      time ~span:"bench.baseline_query" (fun () ->
          for _ = 1 to 3 do
            ignore (Minidb.Database.query db q.Tpch.Queries.sql)
          done)
    in
    let t = dt /. 3.0 in
    Hashtbl.replace baseline_query_times vid t;
    t

let run_sweep () =
  if !sweep_cache = [] then begin
    let inst = Instance.get ~sf:!sf in
    let variants = Tpch.Queries.variants inst.Instance.stats in
    let counts = sweep_counts () in
    let rows =
      List.concat_map
        (fun (v : Tpch.Queries.variant) ->
          List.map
            (fun sys ->
              let e = run_audit ~counts ~vid:v.Tpch.Queries.vid sys in
              let per_query_audit =
                (e.steps.t_first +. e.steps.t_rest)
                /. float_of_int counts.n_select
              in
              let pkg = build_package e in
              let r = run_replay e pkg in
              let per_query_replay =
                (r.rsteps.t_first +. r.rsteps.t_rest)
                /. float_of_int counts.n_select
              in
              Printf.eprintf
                "  sweep %s %-16s audit/q=%s replay/q=%s size=%sMB%s\n%!"
                v.Tpch.Queries.vid (system_name sys) (s per_query_audit)
                (s per_query_replay)
                (mb (Package.total_bytes pkg))
                (if r.verified then "" else " [VERIFY FAILED]");
              { sw_vid = v.Tpch.Queries.vid;
                sw_system = sys;
                sw_audit_query_s = per_query_audit;
                sw_replay_query_s = per_query_replay;
                sw_pkg_bytes = Package.total_bytes pkg;
                sw_verified = r.verified })
            systems)
        variants
    in
    sweep_cache := rows
  end;
  !sweep_cache

let sweep_table ~header value =
  let rows = run_sweep () in
  let inst = Instance.get ~sf:!sf in
  let variants = Tpch.Queries.variants inst.Instance.stats in
  List.map
    (fun (v : Tpch.Queries.variant) ->
      let vid = v.Tpch.Queries.vid in
      let cell sys =
        let r =
          List.find (fun r -> r.sw_vid = vid && r.sw_system = sys) rows
        in
        value vid r
      in
      vid :: List.map cell systems)
    variants
  |> Report.print_table ~header

let fig8a () =
  Report.section "Figure 8a: per-query execution time during audit";
  sweep_table
    ~header:[ "Query"; "PostgreSQL+PTU"; "Server-included"; "Server-excluded" ]
    (fun _ r -> s r.sw_audit_query_s);
  Report.note
    "Expected shape: times grow with selectivity within each family; the\n\
     relative overhead of server-included is large but stable across\n\
     selectivities.\n"

let fig8b () =
  Report.section "Figure 8b: per-query execution time during replay";
  let rows = run_sweep () in
  let inst = Instance.get ~sf:!sf in
  let variants = Tpch.Queries.variants inst.Instance.stats in
  let table =
    List.map
      (fun (v : Tpch.Queries.variant) ->
        let vid = v.Tpch.Queries.vid in
        let cell sys =
          let r =
            List.find (fun r -> r.sw_vid = vid && r.sw_system = sys) rows
          in
          s r.sw_replay_query_s
        in
        let vm =
          s (Vmi.replay_seconds ~native_seconds:(baseline_query_s vid))
        in
        (vid :: List.map cell systems) @ [ vm ])
      variants
  in
  Report.print_table
    ~header:
      [ "Query"; "PostgreSQL+PTU"; "Server-included"; "Server-excluded"; "VM" ]
    table;
  Report.note
    "Expected shape: server-excluded replay reads recorded results from the\n\
     package (linear in result size; extreme case Q3 returns one row);\n\
     server-included queries the restored subset, matching or beating the\n\
     baseline; the VM is slowest.\n"

let fig9 () =
  Report.section "Figure 9: package size (MB)";
  sweep_table
    ~header:
      [ "Query"; "PTU package (MB)"; "Server-included (MB)";
        "Server-excluded (MB)" ]
    (fun _ r -> mb r.sw_pkg_bytes);
  (* Extrapolation: the simulated data files scale with sf while binaries
     are constant. At SF=1 (the paper's instance) the data-dependent bytes
     multiply by 1/sf, which restores the paper's orders-of-magnitude gap. *)
  Report.note
    "Note: at micro scale the constant 38 MB server binary dominates both\n\
     PTU and server-included packages; the data-dependent components below\n\
     scale with 1/sf = %.0fx to the paper's SF=1.\n"
    (1.0 /. !sf);
  let rows = run_sweep () in
  let inst = Instance.get ~sf:!sf in
  let variants = Tpch.Queries.variants inst.Instance.stats in
  let binaries_bytes = function
    (* server binary + libs + libc + app binary for the systems that ship
       the server; just libc + libpq + app for server-excluded *)
    | Sys_ptu | Sys_included ->
      38_000_000 + 900_000 + 2_300_000 + 2_000_000 + 250_000
    | Sys_excluded -> 2_000_000 + 250_000
  in
  List.map
    (fun (v : Tpch.Queries.variant) ->
      let vid = v.Tpch.Queries.vid in
      let cell sys =
        let r =
          List.find (fun r -> r.sw_vid = vid && r.sw_system = sys) rows
        in
        let fixed = binaries_bytes sys in
        let data = max 0 (r.sw_pkg_bytes - fixed) in
        let scaled = (float_of_int data /. !sf) +. float_of_int fixed in
        Printf.sprintf "%.1f" (scaled /. 1e6)
      in
      vid :: List.map cell systems)
    variants
  |> Report.print_table
       ~header:
         [ "Query"; "PTU @SF=1 (MB)"; "Server-included @SF=1 (MB)";
           "Server-excluded @SF=1 (MB)" ]

(* ------------------------------------------------------------------ *)
(* Section IX-F: the VMI comparison.                                   *)

let vmi () =
  Report.section "Section IX-F: virtual machine image comparison";
  let inst = Instance.get ~sf:!sf in
  let db = Instance.fresh_db inst in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find inst.Instance.stats "Q1-1" in
  let cfg =
    Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql
      ~stats:inst.Instance.stats
  in
  ignore (Tpch.Workload.install_app_files kernel cfg);
  let image = Vmi.of_kernel kernel ~server in
  Report.print_table ~header:[ "VMI component"; "Size" ]
    (List.map
       (fun (label, bytes) -> [ label; Report.human_bytes bytes ])
       image.Vmi.components
    @ [ [ "TOTAL"; Report.human_bytes image.Vmi.image_bytes ] ]);
  (* average LDV package size over the fig7 experiments *)
  let exps = get_fig7_experiments () in
  let ldv_sizes =
    List.filter_map
      (fun (sys, e) ->
        match sys with
        | Sys_included | Sys_excluded ->
          Some (Package.total_bytes (build_package e))
        | Sys_ptu -> None)
      exps
  in
  let avg =
    List.fold_left ( + ) 0 ldv_sizes / max 1 (List.length ldv_sizes)
  in
  Report.note "Average LDV package: %s; VMI is %.0fx larger.\n"
    (Report.human_bytes avg)
    (float_of_int image.Vmi.image_bytes /. float_of_int (max 1 avg));
  Report.note
    "VM replay model: boot %.0f s, query slowdown factor %.2fx over native\n\
     (used for the VM column of Figure 8b).\n"
    Vmi.init_seconds Vmi.query_overhead_factor

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md.                  *)

let ablation () =
  Report.section "Ablation 1: slicing on vs off (server-included DB content)";
  let e = run_audit ~counts:(sweep_counts ()) ~vid:"Q1-1" Sys_included in
  let db = Dbclient.Server.db e.audit.Audit.server in
  let sliced = Slice.relevant e.audit in
  let all_live =
    List.fold_left
      (fun acc name ->
        let table = Minidb.Catalog.find (Minidb.Database.catalog db) name in
        List.fold_left
          (fun acc (tv : Minidb.Table.tuple_version) ->
            Minidb.Tid.Set.add tv.Minidb.Table.tid acc)
          acc (Minidb.Table.scan table))
      Minidb.Tid.Set.empty
      (Minidb.Catalog.table_names (Minidb.Database.catalog db))
  in
  (* materialize each subset once and size the blobs, rather than
     encoding a second time through [Slice.subset_bytes] *)
  let b_sliced = Slice.subset_bytes_of_csvs (Slice.to_csvs db sliced) in
  let b_full = Slice.subset_bytes_of_csvs (Slice.to_csvs db all_live) in
  Report.print_table ~header:[ "Variant"; "Tuples"; "CSV bytes" ]
    [ [ "relevant subset (LDV)";
        string_of_int (Minidb.Tid.Set.cardinal sliced);
        Report.human_bytes b_sliced ];
      [ "full DB (no slicing)";
        string_of_int (Minidb.Tid.Set.cardinal all_live);
        Report.human_bytes b_full ] ];
  Report.note "Slicing shrinks the DB content %.1fx for Q1-1.\n"
    (float_of_int b_full /. float_of_int (max 1 b_sliced));

  Report.section "Ablation 2: provenance computation cost per query";
  let inst = Instance.get ~sf:!sf in
  let dbq = Instance.fresh_db inst in
  let q = Tpch.Queries.find inst.Instance.stats "Q1-5" in
  ignore (Minidb.Database.query dbq q.Tpch.Queries.sql);
  let _, plain =
    time (fun () ->
        for _ = 1 to 3 do
          ignore (Minidb.Database.query dbq q.Tpch.Queries.sql)
        done)
  in
  let _, with_prov =
    time (fun () ->
        for _ = 1 to 3 do
          ignore (Perm.Provenance_sql.query_lineage dbq q.Tpch.Queries.sql)
        done)
  in
  Report.print_table ~header:[ "Execution"; "Per query (Q1-5)" ]
    [ [ "plain"; s (plain /. 3.) ]; [ "with lineage"; s (with_prov /. 3.) ] ];

  Report.section "Ablation 3: interception overhead per statement";
  let count = 200 in
  let run_mode mode =
    let db = Instance.fresh_db inst in
    let kernel = Minios.Kernel.create () in
    let server = Dbclient.Server.install kernel db in
    let session = I.create ~mode ~kernel server in
    let _, dt =
      time (fun () ->
          for k = 1 to count do
            ignore
              (I.execute session ~pid:1
                 (Printf.sprintf
                    "SELECT o_comment FROM orders WHERE o_orderkey = %d" k))
          done)
    in
    dt /. float_of_int count
  in
  Report.print_table ~header:[ "Interceptor mode"; "Per point query" ]
    [ [ "passthrough"; s (run_mode I.Passthrough) ];
      [ "audit (server-excluded)"; s (run_mode I.Audit_excluded) ];
      [ "audit (server-included)"; s (run_mode I.Audit_included) ] ];

  Report.section "Ablation 4: secondary index on the update workload";
  let point_updates db n =
    let _, dt =
      time (fun () ->
          for k = 1 to n do
            ignore
              (Minidb.Database.exec db
                 (Printf.sprintf
                    "UPDATE orders SET o_comment = 'c%d' WHERE o_orderkey = %d"
                    k k))
          done)
    in
    dt /. float_of_int n
  in
  (* instances restore with the PK indexes of tpch_schema in place; drop
     the orders one for the unindexed variant *)
  let with_index = Instance.fresh_db inst in
  let without_index = Instance.fresh_db inst in
  ignore (Minidb.Database.exec without_index "DROP INDEX orders_pk");
  Report.print_table ~header:[ "Variant"; "Per point update" ]
    [ [ "with o_orderkey index"; s (point_updates with_index 100) ];
      [ "without index (full scan)"; s (point_updates without_index 50) ] ];

  Report.section "Ablation 5: packaged-subset restore vs AS OF time travel";
  (* Two ways to answer a query against a past state: restore the packaged
     subset into a fresh DB (LDV), or keep the full versioned DB around
     and query AS OF (the temporal-DB alternative of the related work). *)
  let db_tt = Instance.fresh_db inst in
  let q1 = Tpch.Queries.find inst.Instance.stats "Q1-1" in
  let snapshot = Minidb.Database.clock db_tt in
  ignore
    (Minidb.Database.exec db_tt
       "UPDATE lineitem SET l_comment = 'perturbed' WHERE l_suppkey = 1");
  let asof_sql =
    (* rewrite Q1-1's FROM to scan the snapshot *)
    Str_replace.replace q1.Tpch.Queries.sql ~needle:"FROM lineitem"
      ~replacement:(Printf.sprintf "FROM lineitem AS OF %d" snapshot)
  in
  let _, t_asof =
    time (fun () -> ignore (Minidb.Database.query db_tt asof_sql))
  in
  let e = run_audit ~counts:(sweep_counts ()) ~vid:"Q1-1" Sys_included in
  let pkg = build_package e in
  let (_ : Replay.prepared), t_restore = time (fun () -> Replay.prepare pkg) in
  Report.print_table ~header:[ "Strategy"; "Time"; "Notes" ]
    [ [ "LDV subset restore + query"; s t_restore;
        "fresh environment; needs only the package" ];
      [ "AS OF over full versioned DB"; s t_asof;
        "needs the original server and full history" ] ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the inner loops behind each figure.      *)

let micro () =
  Report.section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let inst = Instance.get ~sf:(min !sf 0.002) in
  let db = Instance.fresh_db inst in
  let q1 = Tpch.Queries.find inst.Instance.stats "Q1-1" in
  let q2 = Tpch.Queries.find inst.Instance.stats "Q2-2" in
  let fig6_trace =
    (* the Figure 6b chain, for inference cost *)
    let t = Prov.Trace.create Prov.Bb_model.model in
    ignore (Prov.Bb_model.add_process t ~pid:1 ~name:"P1");
    ignore (Prov.Bb_model.add_process t ~pid:2 ~name:"P2");
    List.iter
      (fun p -> ignore (Prov.Bb_model.add_file t ~path:p))
      [ "A"; "B"; "C" ];
    ignore
      (Prov.Bb_model.read_from t ~pid:1 ~path:"A" ~time:(Prov.Interval.make 1 1));
    ignore
      (Prov.Bb_model.has_written t ~pid:1 ~path:"B"
         ~time:(Prov.Interval.make 4 7));
    ignore
      (Prov.Bb_model.read_from t ~pid:2 ~path:"B" ~time:(Prov.Interval.make 2 5));
    ignore
      (Prov.Bb_model.has_written t ~pid:2 ~path:"C"
         ~time:(Prov.Interval.make 1 6));
    t
  in
  let sales = Minidb.Database.create () in
  ignore (Minidb.Database.exec sales "CREATE TABLE s (x INT, y INT)");
  for k = 1 to 200 do
    ignore
      (Minidb.Database.exec sales
         (Printf.sprintf "INSERT INTO s VALUES (%d, %d)" k (k mod 17)))
  done;
  let csv_schema =
    Minidb.Schema.of_list
      [ Minidb.Schema.column "a" Minidb.Value.Tint;
        Minidb.Schema.column "b" Minidb.Value.Tstr ]
  in
  let tests =
    [ Test.make ~name:"sql-parse(Q2)"
        (Staged.stage (fun () -> Minidb.Sql_parser.parse q2.Tpch.Queries.sql));
      Test.make ~name:"fig8a/select-scan(Q1-1)"
        (Staged.stage (fun () -> Minidb.Database.query db q1.Tpch.Queries.sql));
      Test.make ~name:"fig8a/lineage(Q1-1)"
        (Staged.stage (fun () ->
             Perm.Provenance_sql.query_lineage db q1.Tpch.Queries.sql));
      Test.make ~name:"fig8a/hash-join(Q2-2)"
        (Staged.stage (fun () -> Minidb.Database.query db q2.Tpch.Queries.sql));
      Test.make ~name:"aggregate-groupby"
        (Staged.stage (fun () ->
             Minidb.Database.query sales
               "SELECT y, count(*), sum(x) FROM s GROUP BY y"));
      Test.make ~name:"fig6/temporal-inference"
        (Staged.stage (fun () ->
             Prov.Dependency.dependencies_of fig6_trace "file:C"));
      Test.make ~name:"like-match"
        (Staged.stage (fun () ->
             Minidb.Eval_expr.like_match ~pattern:"%00000%"
               "Customer#000012345"));
      Test.make ~name:"fig9/csv-encode-row"
        (Staged.stage (fun () ->
             Minidb.Csv.encode_versions csv_schema
               [ (1, 1, [| Minidb.Value.Int 42; Minidb.Value.Str "hello" |]) ]))
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let rows =
    List.concat_map
      (fun test ->
        List.map
          (fun elt ->
            let m = Benchmark.run cfg instances elt in
            let est = Analyze.one ols Toolkit.Instance.monotonic_clock m in
            let ns =
              match Analyze.OLS.estimates est with
              | Some (v :: _) -> v
              | _ -> nan
            in
            [ Test.Elt.name elt; Report.seconds (ns /. 1e9) ])
          (Test.elements test))
      tests
  in
  Report.print_table ~header:[ "benchmark"; "time/run" ] rows

(* ------------------------------------------------------------------ *)
(* Profile: native vs audited run, per-stage overhead breakdown. The
   audited run's spans are isolated by span-id windowing (the Memory
   sink is global for the whole bench process) and fed through
   [Ldv_obs.Profile]; the result lands in BENCH_profile.json next to
   BENCH_obs.json.                                                     *)

module P = Ldv_obs.Profile
module Json = Ldv_obs.Json

(* The Q1-1 workload app run with a passthrough session and no tracer:
   the observability-free baseline the audit overhead is measured
   against. *)
let run_native counts : float =
  Gc.compact ();
  let inst = Instance.get ~sf:!sf in
  let db = Instance.fresh_db inst in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find inst.Instance.stats "Q1-1" in
  let cfg =
    { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql
         ~stats:inst.Instance.stats)
      with
      Tpch.Workload.n_insert = counts.n_insert;
      n_select = counts.n_select;
      n_update = counts.n_update }
  in
  let binary = Tpch.Workload.install_app_files kernel cfg in
  let program = Tpch.Workload.app cfg in
  incr name_counter;
  let app_name = Printf.sprintf "bench-native-%d" !name_counter in
  Minios.Program.register ~name:app_name program;
  let session = I.create ~mode:I.Passthrough ~kernel server in
  I.bind kernel session;
  Fun.protect
    ~finally:(fun () -> I.unbind kernel)
    (fun () ->
      let _, dt =
        time (fun () ->
            Minios.Program.run kernel ~binary ~libs:Tpch.Workload.app_libs
              ~name:app_name program)
      in
      dt)

let profile_bench () =
  Report.section "Profile: audit overhead breakdown (Q1-1, server-included)";
  let counts = sweep_counts () in
  (* the native baseline runs with observability fully off, so the factor
     charges the audit for its instrumentation too *)
  Ldv_obs.set_sink Ldv_obs.Null;
  let native_s =
    Fun.protect
      ~finally:(fun () -> Ldv_obs.set_sink Ldv_obs.Memory)
      (fun () -> run_native counts)
  in
  let last_id =
    List.fold_left
      (fun acc (sp : Ldv_obs.span) -> max acc sp.Ldv_obs.sp_id)
      0 (Ldv_obs.snapshot ()).Ldv_obs.spans
  in
  let e = run_audit ~counts ~vid:"Q1-1" Sys_included in
  let after = Ldv_obs.snapshot () in
  let windowed =
    { after with
      Ldv_obs.spans =
        List.filter
          (fun (sp : Ldv_obs.span) -> sp.Ldv_obs.sp_id > last_id)
          after.Ldv_obs.spans }
  in
  let prof = P.of_snapshot windowed in
  let rows = P.rows prof in
  let total_of name =
    match List.find_opt (fun (r : P.row) -> r.P.r_name = name) rows with
    | Some r -> r.P.r_total
    | None -> 0.0
  in
  let audited_s = total_of "audit.app" in
  let overhead =
    if native_s > 0.0 then audited_s /. native_s else Float.nan
  in
  Report.print_table
    ~header:[ "run"; "wall" ]
    [ [ "native app (passthrough, no tracer)"; s native_s ];
      [ "audited app (server-included)"; s audited_s ];
      [ "full audit incl. setup + trace build"; s e.total_audit_s ] ];
  Report.note "audit overhead factor: %.2fx over native\n" overhead;
  Report.section "Per-stage breakdown of the audited run";
  Report.print_table
    ~header:[ "stage"; "count"; "total"; "self" ]
    (List.map
       (fun (r : P.row) ->
         [ r.P.r_name;
           string_of_int r.P.r_count;
           s r.P.r_total;
           s r.P.r_self ])
       rows);
  let json =
    Json.Obj
      [ ("query", Json.Str "Q1-1");
        ("system", Json.Str (system_name Sys_included));
        ("native_s", Json.Float native_s);
        ("audited_s", Json.Float audited_s);
        ("audit_total_s", Json.Float e.total_audit_s);
        ("overhead_factor", Json.Float overhead);
        ("stages",
         Json.List
           (List.map
              (fun (r : P.row) ->
                Json.Obj
                  [ ("name", Json.Str r.P.r_name);
                    ("count", Json.Int r.P.r_count);
                    ("total_s", Json.Float r.P.r_total);
                    ("self_s", Json.Float r.P.r_self) ])
              rows)) ]
  in
  let oc = open_out "BENCH_profile.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_profile.json\n%!"

(* ------------------------------------------------------------------ *)
(* Concurrent sessions: scheduler scaling, WAL group commit, and
   deterministic replay of the recorded schedule. Writes
   BENCH_concurrent.json.                                              *)

(** WAL fsync barriers for [rounds] scheduler quanta of [sessions]
    autocommit inserts each. The grouped variant uses the real quantum
    hook: [Durable.enable_group_commit] registers the flush on the
    kernel, and each simulated quantum boundary runs the kernel's hooks
    exactly as {!Minios.Sched} does after every round. *)
let wal_barriers ~grouped ~sessions ~rounds : int =
  let kernel = Minios.Kernel.create () in
  let db = Minidb.Database.create () in
  let server = Dbclient.Server.attach db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  let d = Dbclient.Durable.start kernel server ~pid:proc.Minios.Kernel.pid in
  if grouped then Dbclient.Durable.enable_group_commit d;
  ignore (Dbclient.Durable.exec d "CREATE TABLE t (a INT, b TEXT)");
  for round = 1 to rounds do
    for sid = 0 to sessions - 1 do
      ignore
        (Dbclient.Durable.exec d
           (Printf.sprintf "INSERT INTO t VALUES (%d, 'session %d')"
              ((round * 100) + sid) sid))
    done;
    Minios.Kernel.run_quantum_hooks kernel
  done;
  Dbclient.Durable.flush d;
  Dbclient.Durable.fsync_barriers d

let concurrent_bench () =
  Report.section
    "Concurrent sessions: group commit and schedule-deterministic replay";
  let statements = 12 in
  let json_rows = ref [] in
  let table_rows =
    List.map
      (fun sessions ->
        let per_stmt =
          wal_barriers ~grouped:false ~sessions ~rounds:statements
        in
        let grouped =
          wal_barriers ~grouped:true ~sessions ~rounds:statements
        in
        let (audit, pkg_bytes), wall =
          time (fun () ->
              let audit =
                Concurrent.audited ~sessions ~statements ~seed:42 ()
              in
              (audit, Package.to_bytes (Package.build audit)))
        in
        let audit2 = Concurrent.audited ~sessions ~statements ~seed:42 () in
        let deterministic =
          String.equal pkg_bytes (Package.to_bytes (Package.build audit2))
        in
        let r = Replay.execute (Package.of_bytes pkg_bytes) in
        let replay_ok = Replay.verify ~audit r = [] in
        json_rows :=
          Json.Obj
            [ ("sessions", Json.Int sessions);
              ("statements_per_session", Json.Int statements);
              ("fsync_barriers_per_stmt", Json.Int per_stmt);
              ("fsync_barriers_grouped", Json.Int grouped);
              ("wall_ms", Json.Float (wall *. 1000.));
              ("pkg_bytes", Json.Int (String.length pkg_bytes));
              ("deterministic", Json.Bool deterministic);
              ("replay_ok", Json.Bool replay_ok) ]
          :: !json_rows;
        [ string_of_int sessions;
          string_of_int per_stmt;
          string_of_int grouped;
          Printf.sprintf "%.1fx"
            (float_of_int per_stmt /. float_of_int (max 1 grouped));
          s wall;
          (if deterministic then "yes" else "NO");
          (if replay_ok then "yes" else "NO") ])
      [ 1; 2; 4; 8 ]
  in
  Report.print_table
    ~header:
      [ "sessions"; "fsync/stmt"; "fsync grouped"; "reduction"; "audit+pkg";
        "same-seed bytes"; "replay verified" ]
    table_rows;
  Report.note
    "Group commit batches every concurrent commit of a scheduler quantum\n\
     into one fsync barrier; replay re-runs all sessions under the\n\
     recorded seed, so the interleaving-dependent results repeat.\n";
  let oc = open_out "BENCH_concurrent.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_concurrent.json\n%!"

(* ------------------------------------------------------------------ *)
(* Interactive transactions: commit throughput and first-updater-wins
   abort rate at 1/4/8 sessions over the contended tx workload. Writes
   BENCH_txn.json.                                                     *)

let txn_bench () =
  Report.section
    "Interactive transactions: commit throughput and abort rate";
  let rounds = 8 in
  let json_rows = ref [] in
  let table_rows =
    List.map
      (fun sessions ->
        let audit, wall =
          time (fun () -> Concurrent.audited_tx ~sessions ~rounds ~seed:42 ())
        in
        let outcomes = Audit.tx_outcomes (Audit.stmts audit) in
        let count o =
          List.length (List.filter (fun (_, _, x) -> x = o) outcomes)
        in
        let committed = count Audit.Tx_committed in
        let rolled_back = count Audit.Tx_rolled_back in
        let aborted = count Audit.Tx_aborted + count Audit.Tx_retried in
        let total = List.length outcomes in
        let abort_rate =
          if total = 0 then 0.0
          else float_of_int aborted /. float_of_int total
        in
        let commit_per_s =
          if wall > 0.0 then float_of_int committed /. wall else 0.0
        in
        let audit2 = Concurrent.audited_tx ~sessions ~rounds ~seed:42 () in
        let deterministic =
          outcomes = Audit.tx_outcomes (Audit.stmts audit2)
        in
        json_rows :=
          Json.Obj
            [ ("sessions", Json.Int sessions);
              ("rounds_per_session", Json.Int rounds);
              ("transactions", Json.Int total);
              ("committed", Json.Int committed);
              ("rolled_back", Json.Int rolled_back);
              ("aborted", Json.Int aborted);
              ("abort_rate", Json.Float abort_rate);
              ("commits_per_s", Json.Float commit_per_s);
              ("wall_ms", Json.Float (wall *. 1000.));
              ("deterministic", Json.Bool deterministic) ]
          :: !json_rows;
        [ string_of_int sessions;
          string_of_int total;
          string_of_int committed;
          string_of_int rolled_back;
          string_of_int aborted;
          Printf.sprintf "%.1f%%" (100.0 *. abort_rate);
          Printf.sprintf "%.0f/s" commit_per_s;
          s wall;
          (if deterministic then "yes" else "NO") ])
      [ 1; 4; 8 ]
  in
  Report.print_table
    ~header:
      [ "sessions"; "txs"; "committed"; "rolled back"; "aborted"; "abort rate";
        "commit rate"; "wall"; "same-seed decisions" ]
    table_rows;
  Report.note
    "Every transaction updates one of four shared seed rows, so the\n\
     abort rate is the price of first-updater-wins under growing\n\
     concurrency; aborted transactions are retried by the client's\n\
     bounded-retry loop until they commit.\n";
  let oc = open_out "BENCH_txn.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_txn.json\n%!"

(* ------------------------------------------------------------------ *)
(* Contention: wait-state attribution at 1/4/8 sessions. A concurrent
   audit (latch contention at the interceptor) plus a grouped-WAL loop
   (group-commit fsync deferral) run under the global Memory sink; each
   run's spans are isolated by span-id windowing and the cumulative
   counters by before/after deltas. Writes BENCH_contention.json.       *)

module C = Ldv_obs.Contention
module H = Ldv_obs.Histogram

let contention_bench () =
  Report.section "Contention: wait-state attribution by session count";
  let statements = 12 in
  let counter_of (snap : Ldv_obs.snapshot) name =
    match List.assoc_opt name snap.Ldv_obs.counters with
    | Some v -> v
    | None -> 0
  in
  let pct v = Printf.sprintf "%.1f%%" (100.0 *. v) in
  let json_rows = ref [] in
  let table_rows =
    List.map
      (fun sessions ->
        let before = Ldv_obs.snapshot () in
        let last_id =
          List.fold_left
            (fun acc (sp : Ldv_obs.span) -> max acc sp.Ldv_obs.sp_id)
            0 before.Ldv_obs.spans
        in
        ignore (Concurrent.audited ~sessions ~statements ~seed:42 ());
        ignore (wal_barriers ~grouped:true ~sessions ~rounds:statements);
        let after = Ldv_obs.snapshot () in
        let windowed =
          { after with
            Ldv_obs.spans =
              List.filter
                (fun (sp : Ldv_obs.span) -> sp.Ldv_obs.sp_id > last_id)
                after.Ldv_obs.spans }
        in
        let rep = C.contention windowed in
        let latch_wait_s =
          List.fold_left
            (fun acc (a : C.session_attr) -> acc +. a.C.a_latch_wait)
            0.0 rep.C.c_sessions
        in
        (* the global histograms are cumulative across the whole bench
           process, so the per-run group-commit stall distribution is
           rebuilt from the windowed wait spans *)
        let stall_h = H.create () in
        List.iter
          (fun (sp : Ldv_obs.span) ->
            if sp.Ldv_obs.sp_name = C.group_commit_wait_span then
              H.observe stall_h sp.Ldv_obs.sp_dur)
          windowed.Ldv_obs.spans;
        let stall = H.summarize stall_h in
        let delta name = counter_of after name - counter_of before name in
        let rounds_deferred = delta "wal.group_commit.rounds_deferred" in
        let deferred_commits = delta "wal.deferred_sync" in
        json_rows :=
          Json.Obj
            [ ("sessions", Json.Int sessions);
              ("statements_per_session", Json.Int statements);
              ("latch_waits", Json.Int (delta "latch.waits"));
              ("latch_wait_s", Json.Float latch_wait_s);
              ("latch_wait_share", Json.Float rep.C.c_latch_share);
              ("blocked_share", Json.Float rep.C.c_blocked_share);
              ("group_commit_stall_p95_s", Json.Float stall.H.s_p95);
              ("rounds_deferred", Json.Int rounds_deferred);
              ("deferred_commits", Json.Int deferred_commits) ]
          :: !json_rows;
        [ string_of_int sessions;
          string_of_int (delta "latch.waits");
          pct rep.C.c_latch_share;
          pct rep.C.c_blocked_share;
          (if stall.H.s_count = 0 then "-" else s stall.H.s_p95);
          string_of_int rounds_deferred;
          string_of_int deferred_commits ])
      [ 1; 4; 8 ]
  in
  Report.print_table
    ~header:
      [ "sessions"; "latch waits"; "latch share"; "blocked share";
        "gc stall p95"; "rounds deferred"; "deferred commits" ]
    table_rows;
  Report.note
    "Latch share is wait.latch time over summed session wall time from the\n\
     concurrent audit; the group-commit columns come from a grouped-WAL\n\
     loop of the same session count. One session has nothing to contend\n\
     with, so its shares are the zero baseline.\n";
  let oc = open_out "BENCH_contention.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_contention.json\n%!"

(* ------------------------------------------------------------------ *)
(* Overhead: the phase-attributed audit-overhead ledger as session count
   grows 1 -> 4 -> 8, over a replicated concurrent audit so every phase
   (parse/plan/exec/WAL/fsync/audit-record/provenance/obs-self) has
   work. The ledger histograms are cumulative across the bench process,
   so each run is isolated by before/after (count, sum) deltas. Writes
   BENCH_overhead.json.                                                *)

module L = Ldv_obs.Ledger

let overhead_bench () =
  Report.section "Overhead ledger: per-phase statement cost by session count";
  let statements = 12 in
  let hist_of (snap : Ldv_obs.snapshot) name =
    match List.assoc_opt name snap.Ldv_obs.histograms with
    | Some sum -> (sum.H.s_count, sum.H.s_sum)
    | None -> (0, 0.0)
  in
  let json_rows = ref [] in
  let table_rows =
    List.map
      (fun sessions ->
        let before = Ldv_obs.snapshot () in
        ignore
          (Concurrent.audited ~replicas:2 ~sessions ~statements ~seed:42 ());
        let after = Ldv_obs.snapshot () in
        let delta name =
          let c0, s0 = hist_of before name and c1, s1 = hist_of after name in
          (c1 - c0, s1 -. s0)
        in
        let stmts, total_s = delta L.stmt_hist in
        let n = float_of_int (max 1 stmts) in
        let per_stmt sum = sum /. n in
        let phase_sums =
          List.map (fun p -> (p, snd (delta (L.hist_of_phase p)))) L.phases
        in
        let _, other_s = delta L.other_hist in
        let audit_s =
          List.fold_left
            (fun acc (p, v) -> if L.is_audit_phase p then acc +. v else acc)
            0.0 phase_sums
        in
        let native_s =
          other_s
          +. List.fold_left
               (fun acc (p, v) -> if L.is_audit_phase p then acc else acc +. v)
               0.0 phase_sums
        in
        let overhead_pct =
          if native_s > 0.0 then 100.0 *. audit_s /. native_s else 0.0
        in
        let obs_self_s = List.assoc L.Obs_self phase_sums in
        json_rows :=
          Json.Obj
            ([ ("sessions", Json.Int sessions);
               ("statements_per_session", Json.Int statements);
               ("statements", Json.Int stmts);
               ("stmt_us_per_stmt", Json.Float (1e6 *. per_stmt total_s)) ]
            @ List.map
                (fun (p, v) ->
                  ( L.phase_name p ^ "_us_per_stmt",
                    Json.Float (1e6 *. per_stmt v) ))
                phase_sums
            @ [ ("other_us_per_stmt", Json.Float (1e6 *. per_stmt other_s));
                ("native_us_per_stmt", Json.Float (1e6 *. per_stmt native_s));
                ("audit_us_per_stmt", Json.Float (1e6 *. per_stmt audit_s));
                ("overhead_pct", Json.Float overhead_pct) ])
          :: !json_rows;
        [ string_of_int sessions;
          string_of_int stmts;
          s (per_stmt total_s);
          s (per_stmt native_s);
          s (per_stmt audit_s);
          s (per_stmt obs_self_s);
          Printf.sprintf "%.2f%%" overhead_pct ])
      [ 1; 4; 8 ]
  in
  Report.print_table
    ~header:
      [ "sessions"; "stmts"; "per-stmt"; "native"; "audit"; "obs-self";
        "overhead" ]
    table_rows;
  Report.note
    "Audit = audit-record + provenance + obs-self per statement; native =\n\
     parse + plan + exec + wal-append + fsync + other. Overhead is audit\n\
     over native — the paper's light-weight claim says it stays flat as\n\
     sessions grow. obs-self is the measured cost of the ledger itself,\n\
     charged against the audit.\n";
  let oc = open_out "BENCH_overhead.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_overhead.json\n%!"

(* ------------------------------------------------------------------ *)
(* Replication: read throughput at 1/2/4 replicas, and catch-up time
   after a seeded replica crash with a write backlog. Reads are served
   serially by the harness, so the cluster read time is modeled from the
   measured per-read service times: nodes serve their shares in
   parallel, and the slowest node bounds the batch. Writes
   BENCH_replication.json.                                             *)

let replication_bench () =
  Report.section "Replication: read scaling and crash catch-up";
  let module R = Dbclient.Replication in
  let module F = Ldv_faults in
  let reads = 600 and seed_rows = 50 and backlog = 80 in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun replicas ->
        let kernel, leader = Crashcheck.boot () in
        let cluster = R.create kernel ~leader ~replicas () in
        let exec sql =
          match R.exec cluster sql with
          | Dbclient.Protocol.Error_response m ->
            failwith ("replication bench: " ^ m)
          | _ -> ()
        in
        exec "CREATE TABLE accounts (id INT, owner TEXT, balance INT)";
        for i = 1 to seed_rows do
          exec
            (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'o%d', %d)" i i
               (i * 10))
        done;
        (* read phase: round-robin over the replicas; accumulate each
           node's serial service time, then model the cluster batch as
           the slowest node's share running in parallel with the rest *)
        let per_node = Hashtbl.create 8 in
        let queries =
          [| "SELECT COUNT(*) FROM accounts";
             "SELECT SUM(balance) FROM accounts";
             "SELECT owner FROM accounts WHERE id = 7" |]
        in
        let t0 = now () in
        for i = 1 to reads do
          let q = queries.(i mod Array.length queries) in
          let t = now () in
          let served = R.read cluster q in
          let dt = now () -. t in
          let prev =
            Option.value ~default:0.0
              (Hashtbl.find_opt per_node served.R.sv_node)
          in
          Hashtbl.replace per_node served.R.sv_node (prev +. dt)
        done;
        let wall = now () -. t0 in
        let cluster_time =
          Hashtbl.fold (fun _ t acc -> Float.max t acc) per_node 0.0
        in
        let throughput =
          if cluster_time > 0.0 then float_of_int reads /. cluster_time
          else 0.0
        in
        (* catch-up: crash replica 0 on its next apply, accumulate a
           write backlog while it is down, then time recovery + resync *)
        let plan = F.make ~crash:("repl.apply", 1) ~seed:(7 * replicas) () in
        F.with_plan plan (fun () ->
            exec "INSERT INTO accounts VALUES (9001, 'crash', 0)");
        if R.replica_state cluster 0 <> R.Down then
          failwith "replication bench: seeded crash did not land";
        for i = 1 to backlog do
          exec
            (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'b%d', %d)"
               (9100 + i) i i)
        done;
        let lag = R.ship_seq cluster - R.replica_applied cluster 0 in
        let (), catchup_s = time (fun () -> R.recover cluster 0) in
        (match R.converged cluster with
        | None -> ()
        | Some (i, diff) ->
          failwith
            (Printf.sprintf "replication bench: replica %d diverged: %s" i
               diff));
        json_rows :=
          Json.Obj
            [ ("replicas", Json.Int replicas);
              ("reads", Json.Int reads);
              ("read_wall_s", Json.Float wall);
              ("cluster_read_s", Json.Float cluster_time);
              ("read_throughput_rps", Json.Float throughput);
              ("catchup_backlog", Json.Int lag);
              ("catchup_s", Json.Float catchup_s) ]
          :: !json_rows;
        [ string_of_int replicas;
          string_of_int reads;
          s cluster_time;
          Printf.sprintf "%.0f" throughput;
          string_of_int lag;
          s catchup_s ])
      [ 1; 2; 4 ]
  in
  Report.print_table
    ~header:
      [ "replicas"; "reads"; "cluster read time"; "reads/s";
        "catch-up backlog"; "catch-up time" ]
    rows;
  Report.note
    "Reads round-robin across the replicas; the cluster read time is the\n\
     slowest node's serial share (nodes serve in parallel), so doubling\n\
     the replicas roughly doubles the modeled read throughput. Catch-up\n\
     recovers a crashed replica from its checkpoint + WAL, then ships the\n\
     backlog accrued while it was down.\n";
  let oc = open_out "BENCH_replication.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_replication.json\n%!"

(* ------------------------------------------------------------------ *)
(* Storage: ordered/hash index lookups vs full scans at growing table
   sizes, exercising the cost-based planner and the batch executor on
   the same data. Each size loads one unindexed and one indexed copy of
   the table; the speedup columns are the full-scan time over the
   index-served time for the identical query. Writes BENCH_storage.json
   and fails (exit 1) unless indexed point and range lookups beat the
   full scan by >= 10x at 100k tuples.                                 *)

let storage_bench () =
  Report.section "Storage: index lookups vs full scans (cost-based plans)";
  let module D = Minidb.Database in
  let module V = Minidb.Value in
  let sizes = [ 10_000; 100_000; 1_000_000 ] in
  let load n ~indexed =
    let db = D.create ~name:"storage" () in
    ignore
      (D.exec db "CREATE TABLE items (id INT, grp INT, score INT, label TEXT)");
    let rows =
      List.init n (fun i ->
          [| V.Int (i + 1);
             V.Int (i mod 97);
             V.Int (i * 7 mod 100_000);
             V.Str (Printf.sprintf "item-%07d" (i + 1)) |])
    in
    ignore (D.bulk_insert db ~table:"items" rows);
    if indexed then begin
      ignore (D.exec db "CREATE INDEX items_id ON items (id)");
      ignore (D.exec db "CREATE ORDERED INDEX items_score ON items (score)")
    end;
    db
  in
  (* average query wall time after one warming run *)
  let time_query db sql reps =
    ignore (D.query db sql);
    let _, dt =
      time (fun () ->
          for _ = 1 to reps do
            ignore (D.query db sql)
          done)
    in
    dt /. float_of_int reps
  in
  let plan_of db sql =
    match (D.query db ("EXPLAIN " ^ sql)).Minidb.Executor.rows with
    | { Minidb.Executor.values = [| V.Str p |]; _ } :: _ -> p
    | _ -> "?"
  in
  let failures = ref 0 in
  let json_rows = ref [] in
  let table_rows =
    List.map
      (fun n ->
        let point_sql =
          Printf.sprintf "SELECT label FROM items WHERE id = %d" (n / 2)
        in
        let range_sql =
          "SELECT COUNT(*) FROM items WHERE score BETWEEN 10 AND 60"
        in
        let reps = max 3 (100_000 / n) in
        (* unindexed copy first, dropped before the indexed load so the
           1M size never holds both instances at once *)
        Gc.compact ();
        let point_scan_s, range_scan_s, full_scan_s =
          let db = load n ~indexed:false in
          ( time_query db point_sql reps,
            time_query db range_sql reps,
            time_query db "SELECT COUNT(*) FROM items" reps )
        in
        Gc.compact ();
        let db = load n ~indexed:true in
        let _, load_s = time (fun () -> ignore (D.query db point_sql)) in
        let point_plan = plan_of db point_sql in
        let range_plan = plan_of db range_sql in
        let point_s = time_query db point_sql reps in
        let range_s = time_query db range_sql reps in
        let speedup a b = if b > 0.0 then a /. b else 0.0 in
        let point_x = speedup point_scan_s point_s in
        let range_x = speedup range_scan_s range_s in
        if n = 100_000 && (point_x < 10.0 || range_x < 10.0) then begin
          Printf.eprintf
            "storage bench: index speedup below 10x at 100k tuples \
             (point %.1fx, range %.1fx)\n%!"
            point_x range_x;
          incr failures
        end;
        json_rows :=
          Json.Obj
            [ ("rows", Json.Int n);
              ("reps", Json.Int reps);
              ("first_indexed_query_s", Json.Float load_s);
              ("point_scan_us", Json.Float (1e6 *. point_scan_s));
              ("point_indexed_us", Json.Float (1e6 *. point_s));
              ("point_speedup", Json.Float point_x);
              ("point_plan", Json.Str point_plan);
              ("range_scan_us", Json.Float (1e6 *. range_scan_s));
              ("range_indexed_us", Json.Float (1e6 *. range_s));
              ("range_speedup", Json.Float range_x);
              ("range_plan", Json.Str range_plan);
              ("full_scan_us", Json.Float (1e6 *. full_scan_s));
              ("full_scan_rows_per_s",
               Json.Float
                 (if full_scan_s > 0.0 then float_of_int n /. full_scan_s
                  else 0.0)) ]
          :: !json_rows;
        [ string_of_int n;
          s point_scan_s;
          s point_s;
          Printf.sprintf "%.0fx" point_x;
          s range_scan_s;
          s range_s;
          Printf.sprintf "%.0fx" range_x;
          s full_scan_s ])
      sizes
  in
  Report.print_table
    ~header:
      [ "rows"; "point scan"; "point idx"; "speedup"; "range scan";
        "range idx"; "speedup"; "full scan" ]
    table_rows;
  Report.note
    "Point lookups go through the hash index, range predicates through the\n\
     ordered index; both are chosen by the cost model (see the *_plan\n\
     fields of BENCH_storage.json) and must beat the full scan by 10x at\n\
     100k tuples. The full-scan column is the batch executor's COUNT(*)\n\
     over the whole table.\n";
  let oc = open_out "BENCH_storage.json" in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "wrote BENCH_storage.json\n%!";
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* check: assert the paper's headline shape claims programmatically.   *)

let check () =
  Report.section "Shape checks (paper claims, asserted on this machine)";
  let failures = ref 0 in
  let claim name ok =
    Printf.printf "  [%s] %s\n%!" (if ok then "PASS" else "FAIL") name;
    if not ok then incr failures
  in
  let rows = run_sweep () in
  let get vid sys = List.find (fun r -> r.sw_vid = vid && r.sw_system = sys) rows in
  claim "every audited run replays verified"
    (List.for_all (fun r -> r.sw_verified) rows);
  (* the 66%-selectivity variants ship two-thirds of the DB as CSV, which
     can exceed PTU's native files at very small scales; the claim is made
     for the other 16 variants and checked separately for ordering of the
     DB-content portion *)
  claim "package size: excluded < included < ptu (sub-66% variants)"
    (List.for_all
       (fun (v : Tpch.Queries.variant) ->
         let vid = v.Tpch.Queries.vid in
         v.Tpch.Queries.target_selectivity > 0.5
         ||
         let e = (get vid Sys_excluded).sw_pkg_bytes in
         let i = (get vid Sys_included).sw_pkg_bytes in
         let p = (get vid Sys_ptu).sw_pkg_bytes in
         e < i && i < p)
       (Tpch.Queries.variants (Instance.get ~sf:!sf).Instance.stats));
  claim "replay: server-excluded fastest on every variant"
    (List.for_all
       (fun (v : Tpch.Queries.variant) ->
         let vid = v.Tpch.Queries.vid in
         let e = (get vid Sys_excluded).sw_replay_query_s in
         e <= (get vid Sys_included).sw_replay_query_s
         && e <= (get vid Sys_ptu).sw_replay_query_s)
       (Tpch.Queries.variants (Instance.get ~sf:!sf).Instance.stats));
  claim "replay: included beats baseline on low-selectivity variants"
    (List.for_all
       (fun vid ->
         (get vid Sys_included).sw_replay_query_s
         < (get vid Sys_ptu).sw_replay_query_s)
       [ "Q1-1"; "Q1-2"; "Q2-3"; "Q2-4"; "Q3-3"; "Q3-4"; "Q4-1" ]);
  claim "Q3 (one-row results): excluded package smaller than included by 10x+"
    ((get "Q3-1" Sys_included).sw_pkg_bytes
    > 10 * (get "Q3-1" Sys_excluded).sw_pkg_bytes);
  claim "audit: selectivity grows audit time within Q1 family"
    ((get "Q1-5" Sys_included).sw_audit_query_s
    > (get "Q1-1" Sys_included).sw_audit_query_s);
  (* the VMI dwarfs every package *)
  let biggest_pkg =
    List.fold_left (fun acc r -> max acc r.sw_pkg_bytes) 0 rows
  in
  claim "VMI larger than every package by 10x+"
    (Vmi.base_image_bytes > 10 * biggest_pkg);
  Printf.printf "%d shape check(s) failed\n" !failures;
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let all () =
  table1 ();
  table2 ();
  table3 ();
  fig7a ();
  fig7b ();
  fig8a ();
  fig8b ();
  fig9 ();
  vmi ();
  ablation ();
  micro ();
  profile_bench ();
  concurrent_bench ();
  txn_bench ();
  contention_bench ();
  overhead_bench ();
  replication_bench ();
  storage_bench ();
  check ()

let () =
  let cmd = ref "all" in
  let rec parse = function
    | [] -> ()
    | "--sf" :: v :: rest ->
      sf := float_of_string v;
      parse rest
    | "--paper-counts" :: rest ->
      paper_counts := true;
      parse rest
    | arg :: rest ->
      cmd := arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "LDV benchmark harness (sf=%g, %s counts)\n%!" !sf
    (if !paper_counts then "paper" else "reduced");
  (* Collect harness + pipeline instrumentation for the whole run and dump
     it as JSONL on exit ([check] exits non-zero on failed claims, so an
     [at_exit] hook rather than [Fun.protect] covers that path too). The
     file is readable with `ldv stats BENCH_obs.json`. *)
  Ldv_obs.reset ();
  Ldv_obs.set_sink Ldv_obs.Memory;
  at_exit (fun () ->
      Ldv_obs.set_sink Ldv_obs.Null;
      let oc = open_out "BENCH_obs.json" in
      output_string oc (Ldv_obs.to_jsonl (Ldv_obs.snapshot ()));
      close_out oc;
      Printf.eprintf "wrote BENCH_obs.json (inspect with `ldv stats`)\n%!");
  match !cmd with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig7a" -> fig7a ()
  | "fig7b" -> fig7b ()
  | "fig7" ->
    fig7a ();
    fig7b ()
  | "fig8a" -> fig8a ()
  | "fig8b" -> fig8b ()
  | "fig9" -> fig9 ()
  | "vmi" -> vmi ()
  | "ablation" -> ablation ()
  | "micro" -> micro ()
  | "profile" -> profile_bench ()
  | "concurrent" -> concurrent_bench ()
  | "txn" -> txn_bench ()
  | "contention" -> contention_bench ()
  | "overhead" -> overhead_bench ()
  | "replication" -> replication_bench ()
  | "storage" -> storage_bench ()
  | "check" -> check ()
  | "all" -> all ()
  | other ->
    Printf.eprintf
      "unknown command %S; expected \
       table1|table2|table3|fig7a|fig7b|fig8a|fig8b|fig9|vmi|ablation|micro|profile|concurrent|txn|contention|overhead|replication|storage|check|all\n"
      other;
    exit 2
