(* The ldv command-line tool.

   Mirrors the paper's user surface: `ldv audit` monitors an execution of
   the TPC-H evaluation application and writes a self-contained package
   file; `ldv exec` re-executes a package; `ldv inspect` shows a package's
   manifest, execution trace, and provenance exports; `ldv demo` runs the
   whole loop in one command. Because applications in this simulation are
   OCaml programs rather than native binaries, audit/exec operate on the
   built-in TPC-H workload parameterized through package metadata. *)

open Cmdliner
open Ldv_core

(* ------------------------------------------------------------------ *)
(* Observability: the global --obs flag.                               *)

type obs_mode = Obs_off | Obs_summary | Obs_jsonl of string

let obs_conv =
  let parse = function
    | "off" -> Ok Obs_off
    | "summary" -> Ok Obs_summary
    | "jsonl:" -> Error (`Msg "jsonl: needs a file name (jsonl:FILE)")
    | s when String.length s > 6 && String.sub s 0 6 = "jsonl:" ->
      Ok (Obs_jsonl (String.sub s 6 (String.length s - 6)))
    | s ->
      Error
        (`Msg
          (Printf.sprintf "bad --obs value %S, expected off|summary|jsonl:FILE"
             s))
  in
  let print ppf = function
    | Obs_off -> Format.pp_print_string ppf "off"
    | Obs_summary -> Format.pp_print_string ppf "summary"
    | Obs_jsonl f -> Format.fprintf ppf "jsonl:%s" f
  in
  Arg.conv (parse, print)

let obs_arg =
  let doc =
    "Instrumentation sink: $(b,off) (no-op), $(b,summary) (print per-stage \
     span and metrics tables after the command), or $(b,jsonl:FILE) (stream \
     span records to FILE as JSONL, readable by $(b,ldv stats))."
  in
  Arg.(value & opt obs_conv Obs_off & info [ "obs" ] ~docv:"MODE" ~doc)

(** Run [f] under the selected observability mode, emitting the summary or
    the JSONL trace when it returns (or raises). *)
let with_obs mode f =
  match mode with
  | Obs_off -> f ()
  | Obs_summary ->
    Ldv_obs.reset ();
    Ldv_obs.set_sink Ldv_obs.Memory;
    Fun.protect
      ~finally:(fun () ->
        Ldv_obs.set_sink Ldv_obs.Null;
        Obs_report.print_summary (Ldv_obs.snapshot ()))
      f
  | Obs_jsonl path ->
    Ldv_obs.reset ();
    let oc = open_out path in
    Ldv_obs.set_sink (Ldv_obs.Jsonl oc);
    Fun.protect
      ~finally:(fun () ->
        Ldv_obs.set_sink Ldv_obs.Null;
        Ldv_obs.output_metrics oc (Ldv_obs.snapshot ());
        close_out oc;
        Printf.printf "wrote observability trace %s\n" path)
      f

(* ------------------------------------------------------------------ *)
(* Workload construction shared by audit and exec.                     *)

let cfg_of_metadata (meta : (string * string) list) : Tpch.Workload.config =
  let get key =
    match List.assoc_opt key meta with
    | Some v -> v
    | None -> failwith (Printf.sprintf "package metadata misses %S" key)
  in
  { Tpch.Workload.query_sql = get "w_query";
    n_insert = int_of_string (get "w_insert");
    n_select = int_of_string (get "w_select");
    n_update = int_of_string (get "w_update");
    base_orderkey = int_of_string (get "w_basekey");
    n_customer = int_of_string (get "w_customer");
    out_path = get "w_out";
    config_path = get "w_conf";
    insert_seed = int_of_string (get "w_seed") }

let metadata_of_cfg (cfg : Tpch.Workload.config) =
  [ ("w_query", cfg.Tpch.Workload.query_sql);
    ("w_insert", string_of_int cfg.Tpch.Workload.n_insert);
    ("w_select", string_of_int cfg.Tpch.Workload.n_select);
    ("w_update", string_of_int cfg.Tpch.Workload.n_update);
    ("w_basekey", string_of_int cfg.Tpch.Workload.base_orderkey);
    ("w_customer", string_of_int cfg.Tpch.Workload.n_customer);
    ("w_out", cfg.Tpch.Workload.out_path);
    ("w_conf", cfg.Tpch.Workload.config_path);
    ("w_seed", string_of_int cfg.Tpch.Workload.insert_seed) ]

let run_audit ~sf ~vid ~mode ~n_insert ~n_select ~n_update =
  let db, stats = Tpch.Dbgen.setup ~sf ~seed:42 () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  Tpch.Workload.install_runtime kernel;
  let q = Tpch.Queries.find stats vid in
  let cfg =
    { (Tpch.Workload.default_config ~query_sql:q.Tpch.Queries.sql ~stats) with
      Tpch.Workload.n_insert;
      n_select;
      n_update }
  in
  let binary = Tpch.Workload.install_app_files kernel cfg in
  let program = Tpch.Workload.app cfg in
  Minios.Program.register ~name:Tpch.Workload.registry_name program;
  let audit =
    Audit.run ~packaging:mode kernel server
      ~app_name:Tpch.Workload.registry_name ~app_binary:binary
      ~app_libs:Tpch.Workload.app_libs program
  in
  (audit, cfg)

(* ------------------------------------------------------------------ *)
(* Arguments.                                                          *)

let sf_arg =
  let doc = "TPC-H scale factor relative to the paper's SF=1 instance." in
  Arg.(value & opt float 0.002 & info [ "sf" ] ~docv:"SF" ~doc)

let query_arg =
  let doc = "Workload query variant from Table II (Q1-1 .. Q4-5)." in
  Arg.(value & opt string "Q1-1" & info [ "query"; "q" ] ~docv:"QID" ~doc)

let mode_arg =
  let doc =
    "Packaging mode: $(b,included) (DB server + relevant tuples), \
     $(b,excluded) (recorded responses only), or $(b,ptu) (the \
     application-virtualization baseline)."
  in
  let modes =
    [ ("included", Audit.Included); ("excluded", Audit.Excluded);
      ("ptu", Audit.Ptu_baseline) ]
  in
  Arg.(value & opt (enum modes) Audit.Included & info [ "mode"; "m" ] ~doc)

let counts_args =
  let mk name default doc =
    Arg.(value & opt int default & info [ name ] ~doc)
  in
  Term.(
    const (fun a b c -> (a, b, c))
    $ mk "inserts" 100 "Orders inserted in the Insert step."
    $ mk "selects" 10 "Repetitions of the query in the Select step."
    $ mk "updates" 20 "Orders updated in the Update step.")

let package_arg =
  let doc = "Package file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PACKAGE" ~doc)

let out_arg =
  let doc = "Output package file." in
  Arg.(value & opt string "app.ldv" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* audit                                                               *)

let audit_cmd =
  let sessions_arg =
    let doc =
      "Concurrent sessions. With more than one the audit runs the \
       multi-session notes workload under the cooperative scheduler \
       (server-included packaging; the TPC-H flags are ignored), which is \
       the workload $(b,ldv timeline) and $(b,ldv contention) analyze."
    in
    Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let sched_seed_arg =
    let doc = "Scheduler seed for the concurrent (--sessions > 1) audit." in
    Arg.(value & opt int 42 & info [ "sched-seed" ] ~docv:"SEED" ~doc)
  in
  let replicas_arg =
    let doc =
      "Read replicas for the concurrent (--sessions > 1) audit: \
       snapshot-pinned reads are served by a WAL-shipping replication \
       cluster and the package records which replica answered each read, \
       so $(b,ldv exec) re-runs the whole cluster."
    in
    Arg.(value & opt int 0 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let run obs sf vid mode (n_insert, n_select, n_update) sessions seed
      replicas out =
    with_obs obs @@ fun () ->
    let audit, meta =
      if sessions > 1 then
        (Concurrent.audited ~replicas ~sessions ~statements:8 ~seed (), [])
      else begin
        let audit, cfg =
          run_audit ~sf ~vid ~mode ~n_insert ~n_select ~n_update
        in
        (audit, metadata_of_cfg cfg)
      end
    in
    let pkg =
      match mode with
      | Audit.Ptu_baseline when sessions <= 1 -> Ptu.build audit
      | _ -> Package.build audit
    in
    let pkg = { pkg with Package.metadata = pkg.Package.metadata @ meta } in
    (* crash-safe: temp file + rename, so a failed audit never leaves a
       torn package behind *)
    Package.write_file pkg ~path:out;
    Printf.printf "audited %s under %s monitoring\n"
      (if sessions > 1 then Printf.sprintf "%d concurrent sessions" sessions
       else vid)
      (Package.kind_name pkg.Package.kind);
    Printf.printf "wrote %s (%s, %d files, %d tables, %d recorded statements)\n"
      out
      (Report.human_bytes (Package.total_bytes pkg))
      (List.length pkg.Package.entries)
      (List.length pkg.Package.db_subset)
      (List.length pkg.Package.recording);
    let stats = Prov.Query.stats audit.Audit.trace in
    Format.printf "execution trace: %a@." Prov.Query.pp_stats stats
  in
  let term =
    Term.(
      const run $ obs_arg $ sf_arg $ query_arg $ mode_arg $ counts_args
      $ sessions_arg $ sched_seed_arg $ replicas_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Monitor an execution and create a repeatability package")
    term

(* ------------------------------------------------------------------ *)
(* exec                                                                *)

(** Read a package file, tolerating corrupt content sections (each is
    reported on stderr and skipped). Structural corruption is fatal:
    print the typed diagnostic and exit 3. *)
let read_package path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  match Package.of_bytes_result data with
  | Ok { Package.r_pkg; r_skipped } ->
    List.iter
      (fun (c : Package.corruption) ->
        Printf.eprintf "ldv: warning: skipping corrupt section %s (%s)\n%!"
          c.Package.c_section
          (Ldv_errors.to_string c.Package.c_error))
      r_skipped;
    r_pkg
  | Error e ->
    Printf.eprintf "ldv: %s is not a usable package: %s\n%!" path
      (Ldv_errors.to_string e);
    exit 3

let exec_cmd =
  let run obs path =
    with_obs obs @@ fun () ->
    let pkg = read_package path in
    (* concurrent packages carry a recorded schedule instead of workload
       metadata: re-register the scheduled client programs; otherwise
       rebuild the TPC-H app from the package's workload config *)
    (match Package.schedule pkg with
    | Some (_seed, clients) -> Concurrent.register_schedule_clients clients
    | None ->
      let cfg = cfg_of_metadata pkg.Package.metadata in
      Minios.Program.register ~name:pkg.Package.app_name
        (Tpch.Workload.app cfg));
    let result = Replay.execute pkg in
    Printf.printf "re-executed %s (%s package)\n" pkg.Package.app_name
      (Package.kind_name pkg.Package.kind);
    Printf.printf "%d statements replayed, %d output files produced\n"
      (List.length
         (List.concat_map Dbclient.Interceptor.log result.Replay.sessions))
      (List.length result.Replay.out_files);
    List.iter
      (fun (p, content) ->
        Printf.printf "  %s (%d bytes)\n" p (String.length content))
      result.Replay.out_files
  in
  let term = Term.(const run $ obs_arg $ package_arg) in
  Cmd.v (Cmd.info "exec" ~doc:"Re-execute a repeatability package") term

(* ------------------------------------------------------------------ *)
(* inspect                                                             *)

let inspect_cmd =
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write the execution trace as graphviz.")
  in
  let prov_arg =
    Arg.(value & opt (some string) None & info [ "prov-json" ] ~docv:"FILE"
           ~doc:"Write the execution trace as PROV-JSON.")
  in
  let provn_arg =
    Arg.(value & opt (some string) None & info [ "prov-n" ] ~docv:"FILE"
           ~doc:"Write the execution trace as PROV-N.")
  in
  let run obs path dot prov_json prov_n =
    with_obs obs @@ fun () ->
    let pkg = read_package path in
    Printf.printf "kind: %s\napp: %s (binary %s)\n"
      (Package.kind_name pkg.Package.kind)
      pkg.Package.app_name pkg.Package.app_binary;
    Printf.printf "total size: %s\n" (Report.human_bytes (Package.total_bytes pkg));
    print_endline "manifest:";
    List.iter
      (fun (p, size) -> Printf.printf "  %-45s %s\n" p (Report.human_bytes size))
      (Package.manifest pkg);
    let trace = Package.trace pkg in
    Format.printf "trace: %a@." Prov.Query.pp_stats (Prov.Query.stats trace);
    let write_file path content =
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    Option.iter (fun p -> write_file p (Prov.Dot.to_dot trace)) dot;
    Option.iter (fun p -> write_file p (Prov.Prov_export.to_prov_json trace)) prov_json;
    Option.iter (fun p -> write_file p (Prov.Prov_export.to_prov_n trace)) prov_n
  in
  let term =
    Term.(const run $ obs_arg $ package_arg $ dot_arg $ prov_arg $ provn_arg)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show a package's manifest and execution trace")
    term

(* ------------------------------------------------------------------ *)
(* trace: provenance queries over a package's execution trace          *)

let trace_cmd =
  let target_arg =
    Arg.(value & opt (some string) None & info [ "deps-of" ] ~docv:"NODE"
           ~doc:"Print everything the given entity (e.g. \
                 $(i,file:/app/out/results.csv)) was derived from.")
  in
  let outputs_arg =
    Arg.(value & flag & info [ "outputs" ]
           ~doc:"List the workflow's final output files.")
  in
  let run obs path target outputs =
    with_obs obs @@ fun () ->
    let pkg = read_package path in
    let trace = Package.trace pkg in
    Format.printf "trace: %a@." Prov.Query.pp_stats (Prov.Query.stats trace);
    if outputs then begin
      print_endline "final outputs:";
      List.iter (Printf.printf "  %s\n") (Prov.Query.final_outputs trace)
    end;
    match target with
    | None -> ()
    | Some node ->
      Printf.printf "%s was derived from:\n" node;
      List.iter (Printf.printf "  %s\n") (Prov.Query.inputs_of trace node)
  in
  let term =
    Term.(const run $ obs_arg $ package_arg $ target_arg $ outputs_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run provenance queries over a package's execution trace")
    term

(* ------------------------------------------------------------------ *)
(* stats: replay an exported JSONL observability trace                 *)

(** Read a JSONL observability trace, mapping I/O failures and typed
    decode errors (with their 1-based line numbers) to cmdliner
    messages. *)
let load_trace path : (Ldv_obs.snapshot, [ `Msg of string ]) result =
  let fail fmt = Format.kasprintf (fun m -> Error (`Msg m)) fmt in
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    Ldv_obs.of_jsonl data
  with
  | snap -> Ok snap
  | exception Sys_error msg -> fail "%s" msg
  | exception Ldv_errors.Error e ->
    fail "%s is not an observability trace: %s" path (Ldv_errors.to_string e)

let stats_cmd =
  let file_arg =
    let doc = "JSONL trace written by $(b,--obs jsonl:FILE)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let tree_arg =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:"Also print the span tree (roots at the margin).")
  in
  let by_session_arg =
    Arg.(
      value & flag
      & info [ "by-session" ]
          ~doc:
            "Also print span statistics grouped by $(b,trace.session) \
             (spans without the attribute fall in an \
             $(i,(unattributed)) group), plus a merged all-session \
             section.")
  in
  let run path tree by_session =
    match load_trace path with
    | Error _ as e -> e
    | Ok snap ->
      Obs_report.print_summary snap;
      Obs_report.print_replication snap;
      Obs_report.print_transactions snap;
      if tree then begin
        Report.section "Span tree";
        Obs_report.print_tree snap
      end;
      if by_session then Obs_report.print_by_session snap;
      Ok ()
  in
  let term =
    Term.(term_result (const run $ file_arg $ tree_arg $ by_session_arg))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize an observability trace exported with --obs jsonl:FILE")
    term

(* ------------------------------------------------------------------ *)
(* profile: critical-path / self-total analysis of a JSONL trace       *)

let trace_pos_arg =
  let doc = "JSONL trace written by $(b,--obs jsonl:FILE)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let profile_cmd =
  let critical_arg =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Also print, per root span, the chain of heaviest children \
             with step-cost attribution (the steps sum to the root's \
             duration).")
  in
  let flame_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Write collapsed-stack output (flamegraph.pl / speedscope \
             input) to FILE.")
  in
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the span forest as graphviz, timings and \
             provenance-node correlations overlaid in the trace-graph \
             style of $(b,ldv inspect --dot).")
  in
  let run path critical flame dot =
    match load_trace path with
    | Error _ as e -> e
    | Ok snap ->
      let p = Ldv_obs.Profile.of_snapshot snap in
      Obs_report.print_profile p;
      if critical then Obs_report.print_critical_paths p;
      let write_file out content =
        let oc = open_out out in
        output_string oc content;
        close_out oc;
        Printf.printf "wrote %s\n" out
      in
      Option.iter
        (fun out -> write_file out (Ldv_obs.Profile.to_collapsed p))
        flame;
      Option.iter (fun out -> write_file out (Ldv_obs.Profile.to_dot p)) dot;
      Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ trace_pos_arg $ critical_arg $ flame_arg $ dot_arg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyze an observability trace: self vs total time per span, \
          critical paths, flamegraph and graphviz exports")
    term

(* ------------------------------------------------------------------ *)
(* timeline / contention: wait-state analysis of a JSONL trace         *)

let timeline_cmd =
  let cluster_arg =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Render the cluster-wide causal view instead: per-node lanes \
             (leader sessions and replicas) over wall time, plus a \
             per-trace table joining each statement with the replica \
             applies its shipped WAL records caused (ship frames carry \
             the originating trace id).")
  in
  let run path cluster =
    match load_trace path with
    | Error _ as e -> e
    | Ok snap ->
      if cluster then Obs_report.print_cluster_timeline snap
      else Obs_report.print_timeline snap;
      Ok ()
  in
  let term = Term.(term_result (const run $ trace_pos_arg $ cluster_arg)) in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Render a deterministic per-session Gantt chart over scheduler \
          quanta from an observability trace (collect one with \
          $(b,ldv --obs jsonl:FILE audit --sessions N)), with \
          blocked-vs-running attribution per session; with $(b,--cluster), \
          the cluster-wide causal view spanning leader and replicas")
    term

let contention_cmd =
  let run path =
    match load_trace path with
    | Error _ as e -> e
    | Ok snap ->
      Obs_report.print_contention snap;
      Ok ()
  in
  let term = Term.(term_result (const run $ trace_pos_arg)) in
  Cmd.v
    (Cmd.info "contention"
       ~doc:
         "Report contention from an observability trace: blocked vs \
          running per session, top latch holders with the wait they \
          caused, latch-wait share of wall time, and group-commit stalls")
    term

(* ------------------------------------------------------------------ *)
(* overhead: the audit-overhead ledger view and its regression gate    *)

let overhead_cmd =
  let gate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "gate" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 5) when the audit overhead — the audit-record, \
             provenance, and obs-self phases as a percentage of native \
             work (parse, plan, exec, WAL, fsync, other) — exceeds PCT, \
             or when the trace carries no ledger data to gate on.")
  in
  let run path gate =
    match load_trace path with
    | Error _ as e -> e
    | Ok snap -> (
      let overhead = Obs_report.print_overhead snap in
      match gate with
      | None -> Ok ()
      | Some budget -> (
        match overhead with
        | None ->
          Printf.eprintf
            "ldv: overhead gate: no ledger data to gate on in %s\n%!" path;
          exit 5
        | Some pct ->
          if pct > budget then begin
            Printf.eprintf
              "ldv: overhead gate: %.2f%% audit overhead exceeds the %.2f%% \
               budget\n%!"
              pct budget;
            exit 5
          end;
          Printf.printf "overhead gate: %.2f%% within the %.2f%% budget\n" pct
            budget;
          Ok ()))
  in
  let term = Term.(term_result (const run $ trace_pos_arg $ gate_arg)) in
  Cmd.v
    (Cmd.info "overhead"
       ~doc:
         "Report the per-phase overhead ledger of an observability trace — \
          every statement's wall time split into parse/plan/exec/WAL/fsync \
          versus audit-record/provenance/obs-self — and optionally gate \
          (exit 5) on the audit-overhead percentage")
    term

(* ------------------------------------------------------------------ *)
(* obs diff: the perf-regression gate between two JSONL traces         *)

let obs_cmd =
  let a_arg =
    let doc = "Baseline JSONL trace (run A)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc = "Candidate JSONL trace (run B)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "budget" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 4) when any span's total time in B exceeds its \
             total in A by more than PCT percent; spans new in B with \
             measurable time also fail.")
  in
  let run a b budget =
    match (load_trace a, load_trace b) with
    | Error _ as e, _ | _, (Error _ as e) -> e
    | Ok snap_a, Ok snap_b ->
      let rows = Ldv_obs.Profile.diff snap_a snap_b in
      let regressions = Obs_report.print_diff ~budget_pct:budget rows in
      if regressions <> [] then exit 4;
      Ok ()
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two observability traces span by span (count, total, \
            p95), optionally gating on a regression budget")
      Term.(term_result (const run $ a_arg $ b_arg $ budget_arg))
  in
  Cmd.group
    (Cmd.info "obs" ~doc:"Observability trace tooling")
    [ diff_cmd ]

(* ------------------------------------------------------------------ *)
(* faultcheck                                                          *)

let faultcheck_cmd =
  let campaigns_arg =
    let doc = "Number of fault campaigns to run." in
    Arg.(value & opt int 10 & info [ "campaigns"; "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Campaign seed. The same seed injects the same faults and prints the \
       identical report."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let sessions_arg =
    let doc =
      "Concurrent sessions for the server-included audits (the only \
       packaging the concurrent path supports; the other kinds keep the \
       single-session workload)."
    in
    Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let run obs sf campaigns seed sessions =
    with_obs obs @@ fun () ->
    let audit mode =
      if sessions > 1 && mode = Audit.Included then
        Concurrent.audited ~sessions ~statements:4 ~seed ()
      else
        (* small workload: a campaign runs the loop 3x per index *)
        let audit, _cfg =
          run_audit ~sf ~vid:"Q1-1" ~mode ~n_insert:8 ~n_select:2 ~n_update:3
        in
        audit
    in
    let report = Faultcheck.run ~audit ~campaigns ~seed in
    print_endline (Faultcheck.to_string report);
    if report.Faultcheck.r_uncaught > 0 then exit 1
  in
  let term =
    Term.(
      const run $ obs_arg $ sf_arg $ campaigns_arg $ seed_arg $ sessions_arg)
  in
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:
         "Run seeded fault-injection campaigns over the full \
          audit/package/replay loop and check that every failure is typed")
    term

(* ------------------------------------------------------------------ *)
(* crashcheck                                                          *)

let crashcheck_cmd =
  let campaigns_arg =
    let doc = "Number of crash campaigns to run." in
    Arg.(value & opt int 10 & info [ "campaigns"; "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Campaign seed. The same seed crashes at the same points and prints \
       the identical report."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let no_recover_arg =
    let doc =
      "Debug mode: skip WAL redo after each crash (recovery loads only the \
       last checkpoint). Demonstrates that the verifier detects lost work."
    in
    Arg.(value & flag & info [ "no-recover" ] ~doc)
  in
  let sessions_arg =
    let doc =
      "Concurrent sessions per campaign. With more than one, the workload \
       interleaves per-session autocommit streams and the crash run \
       commits under the WAL's group-commit policy."
    in
    Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let run obs campaigns seed no_recover sessions =
    with_obs obs @@ fun () ->
    let report =
      Crashcheck.run ~recover:(not no_recover) ~sessions ~campaigns ~seed ()
    in
    print_endline (Crashcheck.to_string report);
    if report.Crashcheck.r_uncaught > 0 || report.Crashcheck.r_divergent > 0
    then exit 1
  in
  let term =
    Term.(
      const run $ obs_arg $ campaigns_arg $ seed_arg $ no_recover_arg
      $ sessions_arg)
  in
  Cmd.v
    (Cmd.info "crashcheck"
       ~doc:
         "Run seeded crash-consistency campaigns: kill the durable minidb \
          at rotating crash points, recover from checkpoint + WAL, and \
          verify the result against an uncrashed control run")
    term

(* ------------------------------------------------------------------ *)
(* txcheck                                                             *)

let txcheck_cmd =
  let seeds_arg =
    let doc =
      "Number of seeded crash campaigns to run (each derives its own \
       interleaved transactional workload and crash point)."
    in
    Arg.(value & opt int 10 & info [ "seeds"; "n" ] ~docv:"K" ~doc)
  in
  let sessions_arg =
    let doc =
      "Concurrent transactional sessions per campaign; their streams \
       interleave statement-by-statement in the WAL."
    in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Root seed. The same seed crashes inside the same transactions and \
       prints the identical report."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run obs seeds sessions seed =
    with_obs obs @@ fun () ->
    let report = Txcheck.run ~sessions ~campaigns:seeds ~seed () in
    print_endline (Txcheck.to_string report);
    if report.Txcheck.r_uncaught > 0 || report.Txcheck.r_divergent > 0 then
      exit 1
  in
  let term = Term.(const run $ obs_arg $ seeds_arg $ sessions_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "txcheck"
       ~doc:
         "Run seeded transaction-granular crash campaigns: crash the \
          durable minidb inside interleaved multi-session transactions, \
          recover, and verify that exactly the transactions without a \
          durable COMMIT are gone — state and per-transaction reenactment \
          provenance both checked against a control run")
    term

(* ------------------------------------------------------------------ *)
(* replicacheck                                                        *)

let replicacheck_cmd =
  let seeds_arg =
    let doc =
      "Number of seeded failure campaigns to run (each derives its own \
       workload, fault schedule, and staleness bound)."
    in
    Arg.(value & opt int 25 & info [ "seeds"; "n" ] ~docv:"K" ~doc)
  in
  let replicas_arg =
    let doc = "Read replicas behind the leader." in
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Root seed. The same seed ships the same records, injects the same \
       faults, and prints the identical report."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run obs seeds replicas seed =
    with_obs obs @@ fun () ->
    let report = Replicacheck.run ~campaigns:seeds ~replicas ~seed () in
    print_endline (Replicacheck.to_string report);
    if
      report.Replicacheck.r_uncaught > 0
      || report.Replicacheck.r_divergent > 0
    then exit 1
  in
  let term =
    Term.(const run $ obs_arg $ seeds_arg $ replicas_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "replicacheck"
       ~doc:
         "Run seeded replication-robustness campaigns: ship WAL records \
          from a leader to read replicas under channel faults and replica \
          crashes, then verify byte-identical convergence, leader \
          integrity, and every degraded read against a fault-free control \
          run")
    term

(* ------------------------------------------------------------------ *)
(* sql                                                                 *)

let sql_cmd =
  let script_arg =
    let doc =
      "Semicolon-separated SQL statements, run in order against a fresh \
       in-memory database. Reads standard input when omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let run obs script =
    with_obs obs @@ fun () ->
    let script =
      match script with
      | Some s -> s
      | None -> In_channel.input_all In_channel.stdin
    in
    let db = Minidb.Database.create ~name:"sql" () in
    List.iter
      (fun stmt ->
        match Minidb.Database.exec_ast db stmt with
        | Minidb.Database.Rows r ->
          Printf.printf "%s\n"
            (String.concat " | "
               (List.map
                  (fun c -> c.Minidb.Schema.name)
                  (Array.to_list r.Minidb.Executor.schema)));
          List.iter
            (fun (row : Minidb.Executor.arow) ->
              Printf.printf "%s\n"
                (String.concat " | "
                   (List.map Minidb.Value.to_string
                      (Array.to_list row.Minidb.Executor.values))))
            r.Minidb.Executor.rows
        | Minidb.Database.Affected info ->
          Printf.printf "affected %d\n" info.Minidb.Database.count
        | Minidb.Database.Ddl_done -> Printf.printf "ok\n")
      (Minidb.Sql_parser.parse_script script)
  in
  let term = Term.(const run $ obs_arg $ script_arg) in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Run ad-hoc SQL (including EXPLAIN) against a fresh in-memory \
          minidb instance")
    term

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let run obs sf =
    with_obs obs @@ fun () ->
    print_endline "LDV demo: audit -> package -> replay -> verify";
    List.iter
      (fun mode ->
        let audit, _cfg =
          run_audit ~sf ~vid:"Q1-1" ~mode ~n_insert:50 ~n_select:3 ~n_update:10
        in
        let pkg =
          match mode with
          | Audit.Ptu_baseline -> Ptu.build audit
          | _ -> Package.build audit
        in
        let result = Replay.execute pkg in
        let problems = Replay.verify ~audit result in
        Printf.printf "%-16s %-9s %s\n"
          (Package.kind_name pkg.Package.kind)
          (Report.human_bytes (Package.total_bytes pkg))
          (if problems = [] then "replay verified"
           else "DIVERGED: " ^ String.concat "; " problems))
      [ Audit.Ptu_baseline; Audit.Included; Audit.Excluded ]
  in
  let term = Term.(const run $ obs_arg $ sf_arg) in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Audit, package, replay and verify all three package kinds")
    term

let () =
  (* typed warnings (e.g. a torn WAL tail discarded during load) are
     diagnostics, not failures: print them on stderr and continue *)
  (Ldv_errors.on_warning :=
     fun e -> Printf.eprintf "ldv: warning: %s\n%!" (Ldv_errors.to_string e));
  let info =
    Cmd.info "ldv" ~version:"1.0.0"
      ~doc:"Light-weight database virtualization (ICDE 2015), in OCaml"
  in
  (* --obs reads naturally before the subcommand (`ldv --obs summary
     audit`); cmdliner only accepts options after the command name, so
     hoist a leading --obs behind the rest of the line *)
  let argv =
    match Array.to_list Sys.argv with
    | exe :: "--obs" :: mode :: rest ->
      Array.of_list ((exe :: rest) @ [ "--obs"; mode ])
    | exe :: flag :: rest
      when String.length flag > 6 && String.sub flag 0 6 = "--obs=" ->
      Array.of_list ((exe :: rest) @ [ flag ])
    | _ -> Sys.argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ audit_cmd; exec_cmd; inspect_cmd; trace_cmd; stats_cmd;
            profile_cmd; timeline_cmd; contention_cmd; overhead_cmd;
            obs_cmd; faultcheck_cmd; crashcheck_cmd; txcheck_cmd;
            replicacheck_cmd; sql_cmd; demo_cmd ]))
